(* The benchmark harness.

   Two layers, both in this executable:

   1. The *experiment harness*: regenerates every table/figure of
      EXPERIMENTS.md (E1..E8) by calling the drivers in [Experiments].
      Run `dune exec bench/main.exe` (add `--quick` for a CI-speed pass,
      or `--only e3` for a single experiment).

   2. Bechamel micro/macro benchmarks — one Test per experiment-relevant
      code path (simulator step costs, one consensus run per protocol,
      one adversary construction per lower bound, one exhaustive model
      check).  Run with `--bench` (also included in a default full run).

   3. The parallel-speedup scenario (`--par-bench`): wall-clock time of
      the general attack sweep, the attack seed sweep, and the
      partitioned model-checking frontier at 1, 2 and 4 domains, with a
      column asserting that every jobs count produced identical results.
      `--jobs N` runs the experiment harness itself on a pool of N
      domains (0 = one per core).
*)

open Bechamel
open Toolkit

let nf = Staged.stage

(* --- micro: simulator step costs ------------------------------------- *)

let bench_object_step name (ot : Sim.Optype.t) op =
  Test.make ~name (nf (fun () -> Sim.Optype.apply ot ot.Sim.Optype.init op))

let micro_tests =
  [
    bench_object_step "step-register-write" (Objects.Register.optype ())
      (Objects.Register.write_int 1);
    bench_object_step "step-fetch-add" (Objects.Fetch_add.optype ())
      (Objects.Fetch_add.fetch_add 1);
    bench_object_step "step-compare-swap" (Objects.Compare_swap.optype ())
      (Objects.Compare_swap.cas ~expected:Sim.Value.none
         ~desired:(Sim.Value.some (Sim.Value.int 1)));
    Test.make ~name:"step-config-run"
      (let config =
         Consensus.Protocol.initial_config Consensus.Cas_consensus.protocol
           ~inputs:[ 0; 1 ]
       in
       nf (fun () -> Sim.Run.step config ~pid:0 ~coin:(fun _ -> 0)));
  ]

(* --- macro: one experiment-shaped unit of work per table/figure ------- *)

let run_protocol (p : Consensus.Protocol.t) ~n ~seed =
  let rng = Sim.Rng.create seed in
  let inputs = List.init n (fun _ -> Sim.Rng.int rng 2) in
  Consensus.Protocol.run_once p ~inputs ~sched:(Sim.Sched.random ~seed)

let macro_tests =
  [
    (* E1/E5: one consensus run per protocol, n = 8 *)
    Test.make ~name:"e1-consensus-cas-n8"
      (nf (fun () -> run_protocol Consensus.Cas_consensus.protocol ~n:8 ~seed:1));
    Test.make ~name:"e5-consensus-fetch-add-n8"
      (nf (fun () -> run_protocol Consensus.Fa_consensus.protocol ~n:8 ~seed:1));
    Test.make ~name:"e5-consensus-counter-n8"
      (nf (fun () ->
           run_protocol Consensus.Counter_consensus.protocol ~n:8 ~seed:1));
    Test.make ~name:"e5-consensus-rw3n-n8"
      (nf (fun () -> run_protocol Consensus.Rw_consensus.protocol ~n:8 ~seed:1));
    (* E2: one identical-process adversary construction (Lemma 3.2) *)
    Test.make ~name:"e2-attack-identical-r2"
      (nf (fun () ->
           Lowerbound.Attack.run
             (Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r:2)));
    (* E3: one general adversary construction (Lemma 3.6) *)
    Test.make ~name:"e3-attack-general-r2"
      (nf (fun () ->
           Lowerbound.General_attack.run
             (Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r:2)));
    (* E6: one shared-coin random walk, n = 8 *)
    Test.make ~name:"e6-shared-coin-n8"
      (nf (fun () ->
           let procs =
             List.init 8 (fun _ ->
                 Consensus.Shared_coin.counter_coin ~n:8 ~obj:0 ~k:1)
           in
           let config =
             Sim.Config.make ~optypes:[ Objects.Counter.optype () ] ~procs
           in
           Sim.Run.exec_fast (Sim.Sched.random ~seed:3) config));
    (* E7: one exhaustive classification *)
    Test.make ~name:"e7-classify-all"
      (nf (fun () -> List.map Objclass.Classify.report Objects.Specs.all));
    (* E4/E8 are arithmetic; benchmark the model checker instead *)
    Test.make ~name:"mc-cas-exhaustive-n2"
      (nf (fun () ->
           let config =
             Consensus.Protocol.initial_config Consensus.Cas_consensus.protocol
               ~inputs:[ 0; 1 ]
           in
           Mc.Explore.search ~max_depth:30 ~inputs:[ 0; 1 ] config));
    (* same search under a never-binding node budget: the delta between
       this and mc-cas-exhaustive-n2 is the whole cost of metering *)
    Test.make ~name:"mc-cas-exhaustive-n2-metered"
      (let budget = Robust.Budget.make ~nodes:max_int () in
       nf (fun () ->
           let config =
             Consensus.Protocol.initial_config Consensus.Cas_consensus.protocol
               ~inputs:[ 0; 1 ]
           in
           Mc.Explore.search ~budget ~max_depth:30 ~inputs:[ 0; 1 ] config));
    (* E9: one snapshot-counter workload, recorded and checked *)
    Test.make ~name:"e9-linearize-snapshot-counter"
      (nf (fun () ->
           let workload =
             Objimpl.Harness.random_workload ~n:3 ~calls:3
               ~ops:
                 [ Objects.Counter.inc; Objects.Counter.dec; Objects.Counter.read ]
               ~seed:4
           in
           Objimpl.Harness.run_and_check Objimpl.Counters.snapshot ~n:3
             ~workload ~schedule:(Objimpl.Harness.Random_sched 4) ()));
    (* E10: one greedy bivalence-survival probe *)
    Test.make ~name:"e10-bivalence-tas2"
      (nf (fun () ->
           let config =
             Consensus.Protocol.initial_config Consensus.Tas2.protocol
               ~inputs:[ 0; 1 ]
           in
           Mc.Valency.bivalence_survival ~max_depth:6 config));
    (* E12: the depth-1 protocol census (deterministic + randomized) *)
    Test.make ~name:"e12-census-depth1"
      (nf (fun () ->
           (Mc.Enumerate.census ~depth:1, Mc.Enumerate.census_randomized ~depth:1)));
    (* E13: exhaustive mutual-exclusion check of Peterson *)
    Test.make ~name:"e13-mutex-peterson"
      (nf (fun () -> Mutex.check_exclusion ~max_depth:14 Mutex.peterson ~n:2));
  ]

(* --- parallel speedup: sequential vs. Par pools on the hot sweeps ----- *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* One scenario = one workload as a function of the (optional) pool.  The
   workload must return plain data (no closures) so results from
   different jobs counts can be compared structurally; the "identical"
   column is the determinism claim, measured. *)
let add_scenario table name work =
  let seq_result, seq_time = wall (fun () -> work None) in
  Stats.Table.add_row table
    [ name; "seq"; Printf.sprintf "%.3f" seq_time; "1.00x"; "-" ];
  List.iter
    (fun jobs ->
      let result, time =
        wall (fun () -> Par.with_pool ~jobs (fun pool -> work (Some pool)))
      in
      Stats.Table.add_row table
        [
          name;
          string_of_int jobs;
          Printf.sprintf "%.3f" time;
          Printf.sprintf "%.2fx" (seq_time /. time);
          string_of_bool (result = seq_result);
        ])
    [ 2; 4 ]

let par_bench () =
  let table =
    Stats.Table.create
      ~header:[ "scenario"; "jobs"; "seconds"; "speedup"; "identical" ]
  in
  (* the general attack sweep: one Lemma 3.6 construction per (r, style)
     cell at register counts big enough to cost ~0.5 s each — the E3
     workload pushed into the parameter regime the parallel engine is
     for.  6 coarse independent cells saturate 4 domains. *)
  add_scenario table "general-attack-sweep" (fun pool ->
      Lowerbound.General_attack.sweep ?pool
        (List.concat_map
           (fun r ->
             [
               Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r;
               Consensus.Flawed.unanimous ~style:Consensus.Flawed.Swapping ~r;
             ])
           [ 10; 13; 16 ])
      |> List.map (fun (name, result) ->
             ( name,
               match result with
               | Ok o ->
                   Ok
                     ( o.Lowerbound.General_attack.processes_used,
                       o.Lowerbound.General_attack.registers,
                       o.Lowerbound.General_attack.pieces_alpha,
                       o.Lowerbound.General_attack.pieces_beta,
                       Sim.Trace.steps o.Lowerbound.General_attack.trace,
                       Lowerbound.General_attack.succeeded o )
               | Error e ->
                   Error (Lowerbound.General_attack.error_to_string e) )));
  (* randomized-restart seed sweep of the identical-process adversary:
     thousands of tiny tasks, the chunked queue's amortization case *)
  add_scenario table "attack-seed-sweep" (fun pool ->
      Lowerbound.Attack.seed_sweep ?pool
        ~seeds:(List.init 8192 (fun i -> i + 1))
        (Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r:4)
      |> List.map (fun (seed, result) ->
             ( seed,
               match result with
               | Ok o ->
                   Ok
                     ( Sim.Trace.steps o.Lowerbound.Attack.trace,
                       Lowerbound.Attack.succeeded o )
               | Error e -> Error (Lowerbound.Attack.error_to_string e) )));
  (* partitioned model-checking frontier: few but heavy subtree tasks *)
  add_scenario table "mc-frontier-fa-n3" (fun pool ->
      let config =
        Consensus.Protocol.initial_config Consensus.Fa_consensus.protocol
          ~inputs:[ 0; 1; 1 ]
      in
      let r =
        Mc.Explore.search_par ?pool ~max_depth:15 ~max_states:8_000_000
          ~inputs:[ 0; 1 ] config
      in
      ( r.Mc.Explore.visited,
        r.Mc.Explore.leaves,
        r.Mc.Explore.truncated,
        r.Mc.Explore.max_depth_seen,
        r.Mc.Explore.violation = None ));
  (* the same frontier under a binding node budget: the speculative
     validation fold must keep the governed result — counters and
     completeness verdict alike — bit-identical across jobs counts *)
  add_scenario table "mc-frontier-fa-n3-budget-200k" (fun pool ->
      let config =
        Consensus.Protocol.initial_config Consensus.Fa_consensus.protocol
          ~inputs:[ 0; 1; 1 ]
      in
      let r =
        Mc.Explore.search_par ?pool
          ~budget:(Robust.Budget.make ~nodes:200_000 ())
          ~max_depth:15 ~max_states:8_000_000 ~inputs:[ 0; 1 ] config
      in
      ( r.Mc.Explore.visited,
        r.Mc.Explore.leaves,
        Robust.Budget.completeness_to_string r.Mc.Explore.completeness,
        r.Mc.Explore.max_depth_seen,
        r.Mc.Explore.violation = None ));
  Stats.Table.print table

(* --- transposition-table benchmark: nodes and wall-clock per dedup mode - *)

let dedup_name = function
  | `Off -> "off"
  | `Exact -> "exact"
  | `Symmetric -> "symmetric"

let violation_name (r : int Mc.Explore.result) =
  match r.Mc.Explore.violation with
  | None -> "none"
  | Some v -> (
      match v.Mc.Explore.kind with
      | `Inconsistent -> "inconsistent"
      | `Invalid -> "invalid")

(* Each scenario is one protocol instance explored under all three dedup
   modes.  The verdict (violation found and its kind) must be identical
   across modes — that equality is asserted, not just reported.  The
   identical-process unanimous-input scenarios are where [`Symmetric]
   shines: every interleaving of interchangeable processes collapses. *)
let mc_bench_scenarios () =
  [
    ( "unanimous-rw-r1-n3",
      Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r:1,
      [ 0; 0; 0 ],
      20 );
    ("first-writer-r2-n3", Consensus.Flawed.first_writer ~r:2, [ 0; 0; 0 ], 20);
    ( "unanimous-rw-r2-n3",
      Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r:2,
      [ 0; 0; 0 ],
      24 );
    ( "unanimous-rw-r2-n3-mixed",
      Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r:2,
      [ 0; 0; 1 ],
      20 );
    ( "coin-rw-r2-n2",
      Consensus.Flawed.coin_retry ~style:Consensus.Flawed.Rw ~r:2,
      [ 0; 0 ],
      12 );
    ("cas-n2-mixed", Consensus.Cas_consensus.protocol, [ 0; 1 ], 30);
  ]

(* Wall-clock plus minor-heap allocation of one run; the allocation
   number travels through the [lib/obs] counter so the bench exercises
   the same plumbing the CLI's --metrics mode uses. *)
let measured f =
  let obs = Obs.create () in
  let result, secs = wall (fun () -> Obs.alloc_span (Some obs) "bench" f) in
  (result, secs, Obs.Metrics.counter (Obs.metrics obs) "bench/minor-words")

let engine_project (r : int Mc.Explore.result) =
  ( violation_name r,
    r.Mc.Explore.visited,
    r.Mc.Explore.leaves,
    r.Mc.Explore.table_hits,
    r.Mc.Explore.truncated )

(* The mc-bench rows: every obs-bench scenario under all three dedup
   modes, plus the deep symmetric sweep — the longest row, where the
   flat slab engine's advantage is structural ([`Off] at this depth
   would take minutes, so it runs deduped only; its node-reduction
   ratio is relative to [`Exact]). *)
let mc_bench_rows () =
  List.map
    (fun (name, p, inputs, max_depth) ->
      (name, p, inputs, max_depth, [ `Off; `Exact; `Symmetric ]))
    (mc_bench_scenarios ())
  @ [
      ( "counter-3-n3-mixed-deep",
        Consensus.Counter_consensus.protocol,
        [ 0; 1; 0 ],
        24,
        [ `Exact; `Symmetric ] );
      ( "rw-3n-n7-deep",
        Consensus.Rw_consensus.protocol,
        [ 0; 0; 0; 0; 0; 0; 0 ],
        12,
        [ `Symmetric ] );
    ]

(* The CI perf-smoke subset: the two fastest scenarios of each suite,
   so the job can hard-fail on verdict/node drift in seconds without
   paying for the deep sweeps.  Smoke runs never rewrite the committed
   BENCH_*.json — they only diff against it. *)
let mc_smoke_scenarios = [ "coin-rw-r2-n2"; "cas-n2-mixed" ]
let fuzz_smoke_scenarios = [ "flawed"; "cas-1" ]

(* --- sharded out-of-core rows: the deep sweep again, but through
   [Mc.Shard] at 1/2/8 shards with a table budget small enough that the
   hot tier must spill to disk.  The row is a differential: the verdict
   (and, since the reference is the same symmetric dedup, the
   completeness) must equal the in-memory sequential run's — any
   disagreement, or a budget that failed to force spills, is a hard
   exit, same as the engine-mismatch checks above. *)
let mc_shard_bench () =
  let name = "rw-3n-n7-deep" in
  let p = Consensus.Rw_consensus.protocol in
  let inputs = [ 0; 0; 0; 0; 0; 0; 0 ] in
  let max_depth = 12 in
  let budget_bytes = 64 * 1024 in
  let config () = Consensus.Protocol.initial_config p ~inputs in
  let reference, ref_secs =
    wall (fun () ->
        Mc.Explore.search ~dedup:`Symmetric ~max_depth ~inputs (config ()))
  in
  let table =
    Stats.Table.create
      ~header:
        [
          "scenario";
          "shards";
          "jobs";
          "mem budget";
          "visited";
          "spills";
          "disk recs";
          "steals";
          "seconds";
          "vs seq";
          "verdict";
        ]
  in
  let tmp_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "randsync-bench-dtbl-%d" (Unix.getpid ()))
  in
  let rows =
    List.map
      (fun shards ->
        let obs = Obs.create () in
        let dir = Filename.concat tmp_root (string_of_int shards) in
        let r, secs =
          wall (fun () ->
              Mc.Shard.search ~obs ~jobs:2 ~shards ~dedup:`Symmetric ~max_depth
                ~table_dir:dir ~table_mem_budget:budget_bytes ~inputs
                (config ()))
        in
        let m = Obs.metrics obs in
        let spills = Obs.Metrics.counter m "mc/dtbl/spills" in
        let disk_records = Obs.Metrics.counter m "mc/dtbl/disk-records" in
        let steals = Obs.Metrics.counter m "mc/shard/steals" in
        if
          violation_name r <> violation_name reference
          || r.Mc.Explore.truncated <> reference.Mc.Explore.truncated
        then begin
          Printf.eprintf
            "mc-bench: SHARD VERDICT MISMATCH on %s at %d shards: %s/%b vs \
             sequential %s/%b\n"
            name shards (violation_name r) r.Mc.Explore.truncated
            (violation_name reference) reference.Mc.Explore.truncated;
          exit 1
        end;
        if spills = 0 then begin
          Printf.eprintf
            "mc-bench: %s at %d shards: %d-byte table budget failed to force \
             spills\n"
            name shards budget_bytes;
          exit 1
        end;
        Stats.Table.add_row table
          [
            name;
            string_of_int shards;
            "2";
            string_of_int budget_bytes;
            string_of_int r.Mc.Explore.visited;
            string_of_int spills;
            string_of_int disk_records;
            string_of_int steals;
            Printf.sprintf "%.4f" secs;
            Printf.sprintf "%.2fx" (ref_secs /. Float.max secs 1e-9);
            violation_name r;
          ];
        Printf.sprintf
          {|    { "scenario": %S, "shards": %d, "jobs": 2, "table_mem_budget": %d, "visited": %d, "spills": %d, "disk_records": %d, "steals": %d, "seconds": %.6f, "seconds_sequential": %.6f, "verdict": %S, "truncated": %b }|}
          name shards budget_bytes r.Mc.Explore.visited spills disk_records
          steals secs ref_secs (violation_name r) r.Mc.Explore.truncated)
      [ 1; 2; 8 ]
  in
  print_endline "\nsharded out-of-core (forced spills, verdict-checked):";
  Stats.Table.print table;
  rows


let mc_bench ?(smoke = false) () =
  let table =
    Stats.Table.create
      ~header:
        [
          "scenario";
          "dedup";
          "visited";
          "leaves";
          "table hits";
          "closure s";
          "flat s";
          "speedup";
          "flat minor MW";
          "nodes vs off";
          "verdict";
        ]
  in
  let baseline_rows = ref [] in
  let json_scenarios =
    List.map
      (fun (name, p, inputs, max_depth, modes) ->
        let runs =
          List.map
            (fun dedup ->
              let search state =
                Mc.Explore.search ~state ~dedup ~max_depth ~inputs
                  (Consensus.Protocol.initial_config p ~inputs)
              in
              let rc, secs_c, mw_c = measured (fun () -> search `Closure) in
              let rf, secs_f, mw_f = measured (fun () -> search `Flat) in
              if engine_project rc <> engine_project rf then begin
                Printf.eprintf
                  "mc-bench: ENGINE MISMATCH on %s/%s: flat and closure \
                   disagree\n"
                  name (dedup_name dedup);
                exit 1
              end;
              (dedup, rf, secs_c, secs_f, mw_c, mw_f))
            modes
        in
        let first_result =
          match runs with (_, r, _, _, _, _) :: _ -> r | [] -> assert false
        in
        let has_off = List.mem `Off modes in
        List.iter
          (fun (dedup, (r : int Mc.Explore.result), secs_c, secs_f, _, mw_f) ->
            if violation_name r <> violation_name first_result then begin
              Printf.eprintf
                "mc-bench: VERDICT MISMATCH on %s: %s=%s but %s=%s\n" name
                (dedup_name dedup) (violation_name r)
                (dedup_name (List.hd modes))
                (violation_name first_result);
              exit 1
            end;
            baseline_rows :=
              (name, dedup_name dedup, violation_name r, r.Mc.Explore.visited, secs_f)
              :: !baseline_rows;
            Stats.Table.add_row table
              [
                name;
                dedup_name dedup;
                string_of_int r.Mc.Explore.visited;
                string_of_int r.Mc.Explore.leaves;
                string_of_int r.Mc.Explore.table_hits;
                Printf.sprintf "%.4f" secs_c;
                Printf.sprintf "%.4f" secs_f;
                Printf.sprintf "%.2fx" (secs_c /. Float.max secs_f 1e-9);
                Printf.sprintf "%.1f" (float_of_int mw_f /. 1e6);
                (if has_off then
                   Printf.sprintf "%.1fx"
                     (float_of_int first_result.Mc.Explore.visited
                     /. float_of_int (max 1 r.Mc.Explore.visited))
                 else "-");
                violation_name r;
              ])
          runs;
        let mode_json (dedup, (r : int Mc.Explore.result), secs_c, secs_f, mw_c, mw_f) =
          Printf.sprintf
            {|        { "dedup": %S, "visited": %d, "leaves": %d, "table_hits": %d, "truncated": %b, "seconds_closure": %.6f, "seconds_flat": %.6f, "speedup": %.2f, "minor_words_closure": %d, "minor_words_flat": %d, "verdict": %S }|}
            (dedup_name dedup) r.Mc.Explore.visited r.Mc.Explore.leaves
            r.Mc.Explore.table_hits r.Mc.Explore.truncated secs_c secs_f
            (secs_c /. Float.max secs_f 1e-9)
            mw_c mw_f (violation_name r)
        in
        let last_result =
          match List.rev runs with
          | (_, r, _, _, _, _) :: _ -> r
          | [] -> assert false
        in
        Printf.sprintf
          {|    {
      "scenario": %S,
      "inputs": [%s],
      "max_depth": %d,
      "node_reduction_last_vs_first_mode": %.1f,
      "modes": [
%s
      ]
    }|}
          name
          (String.concat ", " (List.map string_of_int inputs))
          max_depth
          (float_of_int first_result.Mc.Explore.visited
          /. float_of_int (max 1 last_result.Mc.Explore.visited))
          (String.concat ",\n" (List.map mode_json runs)))
      (mc_bench_rows ()
      |> List.filter (fun (name, _, _, _, _) ->
             (not smoke) || List.mem name mc_smoke_scenarios))
  in
  Stats.Table.print table;
  (* smoke skips the sharded sweep: it rides on the deep scenario, which
     smoke already excludes, and CI has a dedicated CLI shard-smoke step *)
  let shard_rows = if smoke then [] else mc_shard_bench () in
  let json =
    Printf.sprintf
      {|{
  "benchmark": "mc transposition table",
  "verdicts_agree": true,
  "engines_agree": true,
  "scenarios": [
%s
  ],
  "sharded": [
%s
  ]
}
|}
      (String.concat ",\n" json_scenarios)
      (String.concat ",\n" shard_rows)
  in
  if smoke then print_endline "\n--smoke: BENCH_mc.json left untouched"
  else begin
    let oc = open_out "BENCH_mc.json" in
    output_string oc json;
    close_out oc;
    print_endline "\nwrote BENCH_mc.json"
  end;
  List.rev !baseline_rows

(* --- observability overhead: null-sink cost on the BENCH_mc scenarios -- *)

(* The claim under test: instrumenting a search with a disabled (null-sink)
   [Obs.t] costs ≲2% wall-clock on searches long enough for a percentage
   to mean anything.  The design makes this cheap by construction —
   engines record counters once from the merged result, not per node — so
   the entire overhead is a fixed per-invocation constant (one span's
   [gettimeofday] pair plus ~10 hashtable writes, ≈0.5µs); the Δ/search
   column shows that constant directly, which is the honest number for
   the microsecond-long scenarios where it dwarfs 2% of nearly nothing. *)
let obs_bench () =
  let table =
    Stats.Table.create
      ~header:
        [
          "scenario";
          "baseline s";
          "obs s";
          "overhead";
          "delta/search";
          "counters ok";
        ]
  in
  let reps = 7 in
  (* each timed rep runs the search enough times to sit well above clock
     granularity (~20ms per rep); baseline and instrumented reps are
     interleaved so CPU-frequency drift hits both sides equally, and the
     min over reps cuts scheduler noise *)
  let timed_rep iters f =
    let _, s =
      wall (fun () ->
          for _ = 1 to iters do
            ignore (f ())
          done)
    in
    s /. float_of_int iters
  in
  let interleaved base_f instr_f =
    let _, probe = wall (fun () -> ignore (base_f ())) in
    let iters =
      max 50 (min 20_000 (int_of_float (0.02 /. Float.max probe 1e-7)))
    in
    let rec go i best_b best_i =
      if i = 0 then (best_b, best_i)
      else
        let b = timed_rep iters base_f in
        let o = timed_rep iters instr_f in
        go (i - 1) (Float.min best_b b) (Float.min best_i o)
    in
    go reps infinity infinity
  in
  List.iter
    (fun (name, p, inputs, max_depth) ->
      let config = Consensus.Protocol.initial_config p ~inputs in
      let search ?obs () =
        Mc.Explore.search ?obs ~dedup:`Exact ~max_depth ~inputs config
      in
      (* one accumulator across iterations, as one CLI invocation sees:
         the claim covers recording cost, not per-search allocation *)
      let shared = Obs.create () in
      let base, instr =
        interleaved (fun () -> search ()) (fun () -> search ~obs:shared ())
      in
      let obs = Obs.create () in
      let r = search ~obs () in
      let m = Obs.metrics obs in
      let counters_ok =
        Obs.Metrics.counter m "mc/visited" = r.Mc.Explore.visited
        && Obs.Metrics.counter m "mc/table-hits" = r.Mc.Explore.table_hits
        && Obs.Metrics.counter m "mc/table-misses" = r.Mc.Explore.table_misses
        && Obs.Metrics.watermark m "mc/max-depth" = r.Mc.Explore.max_depth_seen
      in
      Stats.Table.add_row table
        [
          name;
          Printf.sprintf "%.6f" base;
          Printf.sprintf "%.6f" instr;
          Printf.sprintf "%+.1f%%" ((instr /. base -. 1.) *. 100.);
          Printf.sprintf "%+.0fns" ((instr -. base) *. 1e9);
          string_of_bool counters_ok;
        ])
    (mc_bench_scenarios ());
  Stats.Table.print table

(* --- fuzz throughput: runs/sec and shrink cost per scenario ----------- *)

(* One row per packaged scenario, campaign shrunk-counterexample stats
   included.  Scenarios with planted bugs (flawed, mutex-naive-flag,
   lin-collect-counter) are expected to violate; the safe ones bound the
   fuzzer's false-positive rate at these run counts. *)
let fuzz_bench_scenarios = [
    ("flawed", 2000);
    ("cas-1", 1000);
    ("mutex-naive-flag", 1000);
    ("mutex-peterson-2", 1000);
    ("lin-collect-counter", 2000);
    ("lin-consensus-swap", 2000);
    ("lin-tas-rand", 2000);
  ]

(* Identical campaigns under both engines (same seed drives the same
   runs — the differential suite's guarantee, re-asserted here on every
   bench), timed separately; the flat engine's wall-clock is the
   headline number and the baseline-diff subject. *)
let campaign_project (r : Fuzz.Campaign.result) =
  ( r.Fuzz.Campaign.runs_done,
    r.Fuzz.Campaign.violations,
    r.Fuzz.Campaign.total_steps,
    Robust.Budget.completeness_to_string r.Fuzz.Campaign.completeness,
    match r.Fuzz.Campaign.first_violation with
    | None -> None
    | Some cex -> Some (cex.Fuzz.Campaign.original, cex.Fuzz.Campaign.shrunk) )

let fuzz_bench ?(smoke = false) () =
  let table =
    Stats.Table.create
      ~header:
        [
          "scenario";
          "runs";
          "closure s";
          "flat s";
          "speedup";
          "flat runs/s";
          "flat minor MW";
          "violations";
          "orig steps";
          "shrunk steps";
          "candidates";
          "verdict";
        ]
  in
  let baseline_rows = ref [] in
  let json_scenarios =
    List.map
      (fun (name, runs) ->
        let scenario engine =
          match Fuzz.Scenario.find ~engine name with
          | Ok sc -> sc
          | Error e ->
              prerr_endline e;
              exit 1
        in
        let campaign engine =
          Fuzz.Campaign.run ~shrink:true ~runs ~seed:1 (scenario engine)
        in
        (* engine parity asserted once, on cold caches; the timed reps
           below then interleave the engines (min of 3, warm scenario
           state) so CPU-frequency drift cannot masquerade as a
           speedup — the same discipline obs_bench uses *)
        let rc = campaign `Closure in
        let r = campaign `Flat in
        if campaign_project rc <> campaign_project r then begin
          Printf.eprintf
            "fuzz-bench: ENGINE MISMATCH on %s: flat and closure campaigns \
             disagree\n"
            name;
          exit 1
        end;
        let secs_c = ref infinity
        and secs_f = ref infinity
        and mw_c = ref 0
        and mw_f = ref 0 in
        for _ = 1 to 3 do
          let _, s, mw = measured (fun () -> campaign `Closure) in
          secs_c := Float.min !secs_c s;
          mw_c := mw;
          let _, s, mw = measured (fun () -> campaign `Flat) in
          secs_f := Float.min !secs_f s;
          mw_f := mw
        done;
        let secs_c = !secs_c
        and secs_f = !secs_f
        and mw_c = !mw_c
        and mw_f = !mw_f in
        let orig, shrunk, candidates =
          match r.Fuzz.Campaign.first_violation with
          | None -> (0, 0, 0)
          | Some cex ->
              ( Fuzz.Schedule.steps cex.Fuzz.Campaign.original,
                Fuzz.Schedule.steps cex.Fuzz.Campaign.shrunk,
                match cex.Fuzz.Campaign.shrink_stats with
                | Some s -> s.Fuzz.Shrink.candidates
                | None -> 0 )
        in
        let verdict =
          Robust.Budget.completeness_to_string r.Fuzz.Campaign.completeness
        in
        baseline_rows :=
          (name, r.Fuzz.Campaign.violations, verdict, secs_f) :: !baseline_rows;
        Stats.Table.add_row table
          [
            name;
            string_of_int r.Fuzz.Campaign.runs_done;
            Printf.sprintf "%.3f" secs_c;
            Printf.sprintf "%.3f" secs_f;
            Printf.sprintf "%.2fx" (secs_c /. Float.max secs_f 1e-9);
            Printf.sprintf "%.0f"
              (float_of_int r.Fuzz.Campaign.runs_done /. secs_f);
            Printf.sprintf "%.1f" (float_of_int mw_f /. 1e6);
            string_of_int r.Fuzz.Campaign.violations;
            string_of_int orig;
            string_of_int shrunk;
            string_of_int candidates;
            verdict;
          ];
        Printf.sprintf
          {|    { "scenario": %S, "runs": %d, "seconds_closure": %.6f, "seconds_flat": %.6f, "speedup": %.2f, "runs_per_sec": %.1f, "minor_words_closure": %d, "minor_words_flat": %d, "violations": %d, "steps": %d, "original_steps": %d, "shrunk_steps": %d, "shrink_candidates": %d, "verdict": %S }|}
          name r.Fuzz.Campaign.runs_done secs_c secs_f
          (secs_c /. Float.max secs_f 1e-9)
          (float_of_int r.Fuzz.Campaign.runs_done /. secs_f)
          mw_c mw_f r.Fuzz.Campaign.violations r.Fuzz.Campaign.total_steps orig
          shrunk candidates verdict)
      (List.filter
         (fun (name, _) -> (not smoke) || List.mem name fuzz_smoke_scenarios)
         fuzz_bench_scenarios)
  in
  Stats.Table.print table;
  let json =
    Printf.sprintf
      {|{
  "benchmark": "fuzz campaign throughput",
  "seed": 1,
  "engines_agree": true,
  "scenarios": [
%s
  ]
}
|}
      (String.concat ",\n" json_scenarios)
  in
  if smoke then print_endline "\n--smoke: BENCH_fuzz.json left untouched"
  else begin
    let oc = open_out "BENCH_fuzz.json" in
    output_string oc json;
    close_out oc;
    print_endline "\nwrote BENCH_fuzz.json"
  end;
  List.rev !baseline_rows

(* --- serve bench: submit-to-verdict latency and throughput ------------ *)

(* One in-process daemon, N concurrent clients each pumping the same
   small mc job through the full wire path (connect, submit, stream,
   verdict).  Every verdict is checked against a direct Job.execute of
   the same spec — a served verdict that drifts from the local one is a
   hard failure, the same discipline as the fuzz bench's engine-parity
   check.  Latency is per submit_and_wait call; jobs/s is the wall-clock
   aggregate. *)
let serve_bench ?(smoke = false) () =
  let dir =
    let path = Filename.temp_file "randsync-serve-bench" "" in
    Sys.remove path;
    Unix.mkdir path 0o700;
    path
  in
  let sock = Filename.concat dir "s.sock" in
  let cfg =
    {
      Serve.Server.address = `Unix sock;
      queue_limit = 256;
      workers = Serve.Server.default_workers;
      spool_dir = None;
      obs = None;
      progress_interval = 3600.;
    }
  in
  let ready = Atomic.make false in
  let server =
    Thread.create
      (fun () ->
        Serve.Server.run ~on_ready:(fun _ -> Atomic.set ready true) cfg)
      ()
  in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  let job =
    {
      Serve.Job.spec =
        Serve.Job.Mc
          {
            (Serve.Job.mc_defaults ~protocol:"counter-3") with
            Serve.Job.mc_inputs = [ 0; 1 ];
            mc_depth = 10;
          };
      deadline = None;
    }
  in
  let expected = Serve.Job.execute job in
  (* smoke trims the client-count sweep, never the per-row job count —
     rows must stay parameter-identical to the committed baseline *)
  let total_jobs = 24 in
  let client_counts = if smoke then [ 1; 2 ] else [ 1; 2; 8 ] in
  let table =
    Stats.Table.create
      ~header:
        [ "clients"; "jobs"; "seconds"; "jobs/s"; "mean ms"; "max ms";
          "verdict" ]
  in
  let baseline_rows = ref [] in
  let json_rows =
    List.map
      (fun clients ->
        let per_client = max 1 (total_jobs / clients) in
        let jobs = per_client * clients in
        let mismatches = Atomic.make 0 in
        let results = Array.make clients [||] in
        let client () =
          let lats = Array.make per_client 0. in
          for i = 0 to per_client - 1 do
            let t0 = Unix.gettimeofday () in
            (match Serve.Client.submit_and_wait (`Unix sock) job with
            | Ok (status, lines)
              when status = expected.Serve.Job.status
                   && lines = expected.Serve.Job.lines ->
                ()
            | Ok _ | Error _ -> Atomic.incr mismatches);
            lats.(i) <- Unix.gettimeofday () -. t0
          done;
          lats
        in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init clients (fun i ->
              Thread.create (fun () -> results.(i) <- client ()) ())
        in
        List.iter Thread.join threads;
        let secs = Unix.gettimeofday () -. t0 in
        if Atomic.get mismatches > 0 then begin
          Printf.eprintf
            "serve-bench: VERDICT MISMATCH: %d of %d served verdicts \
             diverged from the direct run\n"
            (Atomic.get mismatches) jobs;
          exit 1
        end;
        let lats = Array.concat (Array.to_list results) in
        let mean =
          Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats)
        in
        let maxl = Array.fold_left Float.max 0. lats in
        baseline_rows :=
          (Printf.sprintf "clients=%d" clients, jobs, "ok", secs)
          :: !baseline_rows;
        Stats.Table.add_row table
          [
            string_of_int clients;
            string_of_int jobs;
            Printf.sprintf "%.3f" secs;
            Printf.sprintf "%.1f" (float_of_int jobs /. secs);
            Printf.sprintf "%.2f" (mean *. 1e3);
            Printf.sprintf "%.2f" (maxl *. 1e3);
            "ok";
          ];
        Printf.sprintf
          {|    { "clients": %d, "jobs": %d, "seconds": %.6f, "jobs_per_sec": %.1f, "mean_latency_ms": %.3f, "max_latency_ms": %.3f, "verdict": "ok" }|}
          clients jobs secs
          (float_of_int jobs /. secs)
          (mean *. 1e3) (maxl *. 1e3))
      client_counts
  in
  (* drain the daemon and scrub the scratch dir *)
  (match Serve.Client.connect (`Unix sock) with
  | Ok c ->
      Serve.Client.send c Serve.Wire.Drain;
      ignore (Serve.Client.recv c);
      Serve.Client.close c
  | Error _ -> ());
  Thread.join server;
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Stats.Table.print table;
  let json =
    Printf.sprintf
      {|{
  "benchmark": "serve submit-to-verdict",
  "workers": %d,
  "rows": [
%s
  ]
}
|}
      Serve.Server.default_workers
      (String.concat ",\n" json_rows)
  in
  if smoke then print_endline "\n--smoke: BENCH_serve.json left untouched"
  else begin
    let oc = open_out "BENCH_serve.json" in
    output_string oc json;
    close_out oc;
    print_endline "\nwrote BENCH_serve.json"
  end;
  List.rev !baseline_rows

(* --- synth bench: CEGIS frontier search throughput -------------------- *)

(* One row per (object style, depth) point of the synthesis space.  The
   frontier and completeness verdict are the correctness payload — a
   baseline diff that sees either move has caught a real regression in
   the search, the pruning or the enumeration, not noise.  Wall clock is
   advisory as everywhere else.  Scenarios stay within a second each so
   the smoke subset can run the full list. *)
let synth_bench_scenarios =
  [
    ("rw-r1-d1", Consensus.Dtree.Rw, 1, 1, false, 4);
    ("rw-r1-d1-coins", Consensus.Dtree.Rw, 1, 1, true, 3);
    ("swap-r1-d1", Consensus.Dtree.Swapping, 1, 1, false, 5);
  ]

let synth_bench ?(smoke = false) () =
  let table =
    Stats.Table.create
      ~header:
        [
          "scenario";
          "trees";
          "candidates";
          "pruned";
          "refuted";
          "lemmas";
          "frontier";
          "secs";
          "verdict";
        ]
  in
  let baseline_rows = ref [] in
  let json_scenarios =
    List.map
      (fun (name, style, registers, depth, coins, procs) ->
        let search () =
          Synth.Cegis.search ~style ~registers ~depth ~coins ~max_procs:procs
            ~seed:1 ()
        in
        let r = search () in
        let secs = ref infinity in
        for _ = 1 to 3 do
          let _, s, _ = measured search in
          secs := Float.min !secs s
        done;
        let secs = !secs in
        let candidates =
          List.fold_left
            (fun a row -> a + row.Synth.Cegis.candidates)
            0 r.Synth.Cegis.rows
        in
        let pruned =
          List.fold_left
            (fun a row -> a + row.Synth.Cegis.pruned)
            0 r.Synth.Cegis.rows
        in
        let refuted =
          List.fold_left
            (fun a row -> a + row.Synth.Cegis.refuted)
            0 r.Synth.Cegis.rows
        in
        let verdict =
          Robust.Budget.completeness_to_string r.Synth.Cegis.completeness
        in
        let frontier = r.Synth.Cegis.frontier in
        baseline_rows := (name, frontier, verdict, secs) :: !baseline_rows;
        Stats.Table.add_row table
          [
            name;
            string_of_int r.Synth.Cegis.trees;
            string_of_int candidates;
            string_of_int pruned;
            string_of_int refuted;
            string_of_int (List.length r.Synth.Cegis.lemmas);
            string_of_int frontier;
            Printf.sprintf "%.3f" secs;
            verdict;
          ];
        Printf.sprintf
          {|    { "scenario": %S, "trees": %d, "candidates": %d, "pruned": %d, "refuted": %d, "lemmas": %d, "frontier": %d, "seconds": %.6f, "verdict": %S }|}
          name r.Synth.Cegis.trees candidates pruned refuted
          (List.length r.Synth.Cegis.lemmas)
          frontier secs verdict)
      synth_bench_scenarios
  in
  Stats.Table.print table;
  let json =
    Printf.sprintf
      {|{
  "benchmark": "synth CEGIS frontier search",
  "seed": 1,
  "scenarios": [
%s
  ]
}
|}
      (String.concat ",\n" json_scenarios)
  in
  if smoke then print_endline "\n--smoke: BENCH_synth.json left untouched"
  else begin
    let oc = open_out "BENCH_synth.json" in
    output_string oc json;
    close_out oc;
    print_endline "\nwrote BENCH_synth.json"
  end;
  List.rev !baseline_rows

(* --- baseline diff: verdict fields hard-fail, wall clock advisory ----- *)

(* Our own JSON emitters above write one object per scenario/mode line,
   so a per-line field scan is a complete parser for these files — no
   JSON library in the bench harness's dependency cone. *)
let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let json_field line key =
  match find_sub line (Printf.sprintf "%S: " key) with
  | None -> None
  | Some j ->
      let n = String.length line in
      if j < n && line.[j] = '"' then
        let k = String.index_from line (j + 1) '"' in
        Some (String.sub line (j + 1) (k - j - 1))
      else begin
        let k = ref j in
        while
          !k < n && not (List.mem line.[!k] [ ','; ' '; '}'; '\n'; '\r' ])
        do
          incr k
        done;
        Some (String.sub line j (!k - j))
      end

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

(* Flat seconds from a baseline row, accepting the pre-engine-column
   schema's plain "seconds" field too. *)
let baseline_seconds line =
  match json_field line "seconds_flat" with
  | Some s -> float_of_string_opt s
  | None -> Option.bind (json_field line "seconds") float_of_string_opt

let diff_advisory name base fresh =
  Printf.printf "baseline %-28s verdict ok, wall %+.1f%% (%.4fs -> %.4fs)\n"
    name
    ((fresh /. Float.max base 1e-9 -. 1.) *. 100.)
    base fresh

let diff_mc_baseline (file, lines) rows =
  let base = ref [] in
  let scenario = ref "" in
  List.iter
    (fun line ->
      (match json_field line "scenario" with
      | Some s -> scenario := s
      | None -> ());
      match json_field line "dedup" with
      | Some dedup ->
          base :=
            ( (!scenario, dedup),
              ( json_field line "verdict",
                Option.bind (json_field line "visited") int_of_string_opt,
                baseline_seconds line ) )
            :: !base
      | None -> ())
    lines;
  Printf.printf "\n=== Baseline diff vs %s (verdicts hard-fail) ===\n\n" file;
  let failed = ref false in
  List.iter
    (fun (scenario, dedup, verdict, visited, secs) ->
      let row = Printf.sprintf "%s/%s" scenario dedup in
      match List.assoc_opt (scenario, dedup) !base with
      | None -> Printf.printf "baseline %-28s not in baseline (new row)\n" row
      | Some (bverdict, bvisited, bsecs) ->
          if bverdict <> Some verdict || bvisited <> Some visited then begin
            Printf.eprintf
              "baseline %s: VERDICT/NODES CHANGED: %s/%d vs baseline %s/%s\n"
              row verdict visited
              (Option.value ~default:"?" bverdict)
              (match bvisited with Some v -> string_of_int v | None -> "?");
            failed := true
          end
          else
            Option.iter (fun bsecs -> diff_advisory row bsecs secs) bsecs)
    rows;
  if !failed then exit 1

let diff_fuzz_baseline (file, lines) rows =
  let base = ref [] in
  List.iter
    (fun line ->
      match (json_field line "scenario", json_field line "runs") with
      | Some s, Some _ ->
          base :=
            ( s,
              ( Option.bind (json_field line "violations") int_of_string_opt,
                json_field line "verdict",
                baseline_seconds line ) )
            :: !base
      | _ -> ())
    lines;
  Printf.printf "\n=== Baseline diff vs %s (verdicts hard-fail) ===\n\n" file;
  let failed = ref false in
  List.iter
    (fun (scenario, violations, verdict, secs) ->
      match List.assoc_opt scenario !base with
      | None ->
          Printf.printf "baseline %-28s not in baseline (new row)\n" scenario
      | Some (bviolations, bverdict, bsecs) ->
          if bviolations <> Some violations || bverdict <> Some verdict then begin
            Printf.eprintf
              "baseline %s: VERDICT CHANGED: %d/%s vs baseline %s/%s\n"
              scenario violations verdict
              (match bviolations with Some v -> string_of_int v | None -> "?")
              (Option.value ~default:"?" bverdict);
            failed := true
          end
          else
            Option.iter (fun bsecs -> diff_advisory scenario bsecs secs) bsecs)
    rows;
  if !failed then exit 1

let diff_serve_baseline (file, lines) rows =
  let base = ref [] in
  List.iter
    (fun line ->
      match (json_field line "clients", json_field line "verdict") with
      | Some c, Some v ->
          base :=
            ( "clients=" ^ c,
              ( v,
                Option.bind (json_field line "jobs") int_of_string_opt,
                baseline_seconds line ) )
            :: !base
      | _ -> ())
    lines;
  Printf.printf "\n=== Baseline diff vs %s (verdicts hard-fail) ===\n\n" file;
  let failed = ref false in
  List.iter
    (fun (row, jobs, verdict, secs) ->
      match List.assoc_opt row !base with
      | None -> Printf.printf "baseline %-28s not in baseline (new row)\n" row
      | Some (bverdict, bjobs, bsecs) ->
          if bverdict <> verdict || bjobs <> Some jobs then begin
            Printf.eprintf
              "baseline %s: VERDICT/JOBS CHANGED: %s/%d vs baseline %s/%s\n"
              row verdict jobs bverdict
              (match bjobs with Some j -> string_of_int j | None -> "?");
            failed := true
          end
          else Option.iter (fun bsecs -> diff_advisory row bsecs secs) bsecs)
    rows;
  if !failed then exit 1

let diff_synth_baseline (file, lines) rows =
  let base = ref [] in
  List.iter
    (fun line ->
      match (json_field line "scenario", json_field line "frontier") with
      | Some s, Some f ->
          base :=
            ( s,
              ( int_of_string_opt f,
                json_field line "verdict",
                baseline_seconds line ) )
            :: !base
      | _ -> ())
    lines;
  Printf.printf "\n=== Baseline diff vs %s (verdicts hard-fail) ===\n\n" file;
  let failed = ref false in
  List.iter
    (fun (scenario, frontier, verdict, secs) ->
      match List.assoc_opt scenario !base with
      | None ->
          Printf.printf "baseline %-28s not in baseline (new row)\n" scenario
      | Some (bfrontier, bverdict, bsecs) ->
          if bfrontier <> Some frontier || bverdict <> Some verdict then begin
            Printf.eprintf
              "baseline %s: FRONTIER/VERDICT CHANGED: %d/%s vs baseline %s/%s\n"
              scenario frontier verdict
              (match bfrontier with Some f -> string_of_int f | None -> "?")
              (Option.value ~default:"?" bverdict);
            failed := true
          end
          else
            Option.iter (fun bsecs -> diff_advisory scenario bsecs secs) bsecs)
    rows;
  if !failed then exit 1

let run_bechamel tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"randsync" ~fmt:"%s/%s" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, ns, r2) :: acc)
      results []
  in
  let t = Stats.Table.create ~header:[ "benchmark"; "ns/run"; "r^2" ] in
  List.iter
    (fun (name, ns, r2) ->
      Stats.Table.add_row t
        [ name; Printf.sprintf "%.1f" ns; Printf.sprintf "%.4f" r2 ])
    (List.sort compare rows);
  Stats.Table.print t

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let bench_only = List.mem "--bench" args in
  let par_bench_only = List.mem "--par-bench" args in
  let mc_bench_only = List.mem "--mc-bench" args in
  let fuzz_bench_only = List.mem "--fuzz-bench" args in
  let obs_bench_only = List.mem "--obs-bench" args in
  let serve_bench_only = List.mem "--serve-bench" args in
  let synth_bench_only = List.mem "--synth-bench" args in
  let smoke = List.mem "--smoke" args in
  let only =
    let rec find = function
      | "--only" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  (* the baseline is loaded up front: the bench overwrites BENCH_*.json
     in place, so reading the file after the run would diff the fresh
     results against themselves *)
  let baseline =
    let rec find = function
      | "--baseline" :: file :: _ -> Some file
      | _ :: rest -> find rest
      | [] -> None
    in
    match find args with
    | None -> None
    | Some file -> (
        match read_lines file with
        | lines -> Some (file, lines)
        | exception Sys_error e ->
            Printf.eprintf "--baseline: %s
" e;
            exit 2)
  in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> int_of_string_opt n
      | _ :: rest -> find rest
      | [] -> None
    in
    match find args with
    | Some 0 -> Some (Par.default_jobs ())
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None
  in
  let with_jobs f =
    match jobs with
    | None -> f None
    | Some jobs -> Par.with_pool ~jobs (fun pool -> f (Some pool))
  in
  if synth_bench_only then begin
    print_endline
      "\n=== Synth: CEGIS frontier search (pruning + verdicts) ===\n";
    let rows = synth_bench ~smoke () in
    Option.iter (fun b -> diff_synth_baseline b rows) baseline
  end
  else if serve_bench_only then begin
    print_endline
      "\n=== Serve daemon: submit-to-verdict latency and jobs/s by client \
       count ===\n";
    let rows = serve_bench ~smoke () in
    Option.iter (fun b -> diff_serve_baseline b rows) baseline
  end
  else if obs_bench_only then begin
    print_endline
      "\n=== Observability overhead (null sink vs. none, min of 7 \
       interleaved reps) ===\n";
    obs_bench ()
  end
  else if fuzz_bench_only then begin
    print_endline "\n=== Fuzz campaign throughput (shrink included) ===\n";
    let rows = fuzz_bench ~smoke () in
    Option.iter (fun b -> diff_fuzz_baseline b rows) baseline
  end
  else if mc_bench_only then begin
    print_endline
      "\n=== Transposition table (nodes + wall clock per dedup mode) ===\n";
    let rows = mc_bench ~smoke () in
    Option.iter (fun b -> diff_mc_baseline b rows) baseline
  end
  else if par_bench_only then begin
    print_endline "\n=== Parallel speedup (wall clock, determinism checked) ===\n";
    par_bench ()
  end
  else begin
    if not bench_only then
      with_jobs (fun pool ->
          match only with
          | Some id -> (
              match Experiments.All.find id with
              | Some s ->
                  Printf.printf "\n=== %s: %s ===\n\n"
                    (String.uppercase_ascii s.Experiments.All.id)
                    s.Experiments.All.title;
                  Stats.Table.print (s.Experiments.All.run ~pool ~quick)
              | None ->
                  Printf.eprintf "unknown experiment %S (known: e1..e8)\n" id;
                  exit 1)
          | None -> Experiments.All.run_all ?pool ~quick ());
    if bench_only || (only = None && not quick) then begin
      print_endline "\n=== Bechamel micro/macro benchmarks (ns per run) ===\n";
      run_bechamel (micro_tests @ macro_tests)
    end
  end
