(* Trace serialization: value encoding round-trips (including a qcheck
   property over random values), event lines round-trip, and a real attack
   witness survives a save/load cycle. *)

open Sim

let roundtrip v = Trace_io.decode_value (Trace_io.encode_value v)

let test_value_roundtrip_cases () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Trace_io.encode_value v)
        true
        (Value.equal v (roundtrip v)))
    [
      Value.unit;
      Value.bool true;
      Value.bool false;
      Value.int 0;
      Value.int (-42);
      Value.int 123456;
      Value.sym "win";
      Value.none;
      Value.some (Value.int 7);
      Value.some (Value.some Value.unit);
      Value.pair (Value.int 1) (Value.bool false);
      Value.pair (Value.pair Value.none (Value.sym "x")) (Value.int 2);
      Value.list [];
      Value.list [ Value.int 1; Value.int 2; Value.int 3 ];
      Value.list [ Value.pair (Value.int 1) (Value.int 2); Value.none ];
    ]

(* random values (symbols restricted to safe alphabets) *)
let value_gen =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 0 then
            oneof
              [
                return Value.unit;
                map Value.bool bool;
                map Value.int small_signed_int;
                map
                  (fun s -> Value.sym ("s" ^ string_of_int s))
                  (int_bound 99);
                return Value.none;
              ]
          else
            oneof
              [
                map Value.some (self (size / 2));
                map2 Value.pair (self (size / 2)) (self (size / 2));
                map Value.list (list_size (int_bound 3) (self (size / 3)));
              ])
        (min size 8))

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value encode/decode roundtrip" ~count:500
    (QCheck.make value_gen)
    (fun v -> Value.equal v (roundtrip v))
  |> QCheck_alcotest.to_alcotest

(* whole random traces, not just golden files: every event shape with
   random payloads survives to_text/of_text *)
let trace_gen =
  let open QCheck.Gen in
  let op_gen =
    map2
      (fun name arg -> Op.make name ~arg)
      (oneofl [ "read"; "write"; "fetch&add"; "cas" ])
      value_gen
  in
  let event_gen =
    oneof
      [
        map2
          (fun (pid, obj) (op, resp) -> Event.Applied { pid; obj; op; resp })
          (pair (int_bound 7) (int_bound 3))
          (pair op_gen value_gen);
        map2
          (fun pid (n, outcome) ->
            Event.Coin { pid; n = n + 2; outcome = outcome mod (n + 2) })
          (int_bound 7)
          (pair (int_bound 3) (int_bound 7));
        map2 (fun pid value -> Event.Decided { pid; value }) (int_bound 7)
          small_signed_int;
        map (fun pid -> Event.Halted { pid }) (int_bound 7);
      ]
  in
  map Trace.of_events (list_size (int_bound 30) event_gen)

let prop_trace_roundtrip =
  QCheck.Test.make ~name:"random trace to_text/of_text roundtrip" ~count:300
    (QCheck.make trace_gen)
    (fun trace -> Trace_io.of_text_int (Trace_io.to_text_int trace) = trace)
  |> QCheck_alcotest.to_alcotest

let test_event_roundtrip () =
  let events : int Event.t list =
    [
      Event.Applied
        {
          pid = 3;
          obj = 1;
          op = Op.make "write" ~arg:(Value.int 5);
          resp = Value.unit;
        };
      Event.Applied
        {
          pid = 0;
          obj = 0;
          op = Op.make "fetch&add" ~arg:(Value.int (-2));
          resp = Value.int 7;
        };
      Event.Coin { pid = 2; n = 2; outcome = 1 };
      Event.Decided { pid = 1; value = 0 };
      Event.Halted { pid = 4 };
    ]
  in
  let trace = Trace.of_events events in
  let text = Trace_io.to_text_int trace in
  let trace' = Trace_io.of_text_int text in
  Alcotest.(check bool) "roundtrip" true (trace = trace')

let test_attack_witness_roundtrip () =
  let p = Consensus.Flawed.unanimous ~style:Consensus.Flawed.Rw ~r:2 in
  match Lowerbound.Attack.run p with
  | Error _ -> Alcotest.fail "attack failed"
  | Ok o ->
      let text = Trace_io.to_text_int o.Lowerbound.Attack.trace in
      let trace' = Trace_io.of_text_int text in
      Alcotest.(check bool) "witness roundtrips" true
        (o.Lowerbound.Attack.trace = trace');
      (* and the reloaded witness still shows the inconsistency *)
      let ds = List.map snd (Trace.decisions trace') in
      Alcotest.(check bool) "still inconsistent" true
        (List.mem 0 ds && List.mem 1 ds)

let test_save_load_file () =
  let path = Filename.temp_file "randsync" ".trace" in
  let trace : int Trace.t =
    Trace.of_events
      [
        Event.Coin { pid = 0; n = 2; outcome = 0 };
        Event.Decided { pid = 0; value = 1 };
      ]
  in
  Trace_io.save_int ~path trace;
  let trace' = Trace_io.load_int ~path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (trace = trace')

let test_parse_errors () =
  List.iter
    (fun text ->
      match Trace_io.of_text_int text with
      | exception Trace_io.Parse_error _ -> ()
      | exception _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" text)
    [ "X 1 2"; "A 1"; "A 1 2 write q u"; "C 1 two 0" ]

let suite =
  [
    Alcotest.test_case "value roundtrip cases" `Quick test_value_roundtrip_cases;
    prop_value_roundtrip;
    prop_trace_roundtrip;
    Alcotest.test_case "event roundtrip" `Quick test_event_roundtrip;
    Alcotest.test_case "attack witness roundtrip" `Quick test_attack_witness_roundtrip;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "parse errors rejected" `Quick test_parse_errors;
  ]
