(* Differential suite for the flat slab engines.  Three engine pairs
   must be observationally identical: the [`Flat] model-checking DFS
   against the closure reference (witness traces, verdicts, and every
   node/table counter), the [Interned] harness step engine against the
   closure walker (full outcomes, including drain-probe verdicts and
   crash bookkeeping), and the [`Flat] fuzz scenarios against their
   [`Closure] twins (same seed, same report, same replay verdict).
   Counter equality is the sharp edge: a transposition table that
   aliased its scratch key, or an intern id that conflated two
   consumed-histories, shows up here long before it corrupts a
   verdict. *)

open Consensus

let project (r : _ Mc.Explore.result) =
  ( (match r.violation with
    | None -> None
    | Some v ->
        Some
          ( (match v.kind with
            | `Inconsistent -> "inconsistent"
            | `Invalid -> "invalid"),
            Sim.Trace.to_string string_of_int v.trace )),
    r.visited,
    r.leaves,
    r.truncated,
    Robust.Budget.completeness_to_string r.completeness,
    r.max_depth_seen,
    r.table_hits,
    r.table_misses )

let smallest_n (p : Protocol.t) =
  let rec go n =
    if n > 8 then invalid_arg p.name
    else if p.supports_n n then n
    else go (n + 1)
  in
  go 2

let dedups = [ ("off", `Off); ("exact", `Exact); ("symmetric", `Symmetric) ]

(* Every registry protocol under every dedup mode: same witness trace,
   same verdict, same visited/leaves/table counters.  [max_states]
   truncation is deterministic (first k preorder nodes), so bounded
   searches compare exactly too. *)
let test_search_registry_differential () =
  List.iter
    (fun (p : Protocol.t) ->
      let n = smallest_n p in
      let inputs = List.init n (fun i -> i land 1) in
      List.iter
        (fun (dname, dedup) ->
          let run state =
            project
              (Mc.Explore.search ~state ~dedup ~max_depth:9 ~max_states:20_000
                 ~inputs:[ 0; 1 ]
                 (Protocol.initial_config p ~inputs))
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d %s: flat = closure" p.name n dname)
            true
            (run `Flat = run `Closure))
        dedups)
    Registry.all

(* The key-immutability regression (the arena table snapshots keys on
   insert; closure keys share arrays only with persistent configs).
   Searching the same physical configuration flat-then-closure-again
   must leave the configuration untouched and reproduce the first
   closure result bit for bit — if the flat DFS leaked mutation into
   the config, or a table entry aliased live scratch state, one of the
   three comparisons below breaks. *)
let test_key_immutability () =
  let p = Cas_consensus.protocol in
  let config = Protocol.initial_config p ~inputs:[ 0; 1; 1 ] in
  let objs0 = Array.copy config.Sim.Config.objects in
  let fps0 = Array.copy config.Sim.Config.fps in
  let run state =
    project
      (Mc.Explore.search ~state ~dedup:`Exact ~max_depth:10 ~inputs:[ 0; 1 ]
         config)
  in
  let closure1 = run `Closure in
  let flat = run `Flat in
  let closure2 = run `Closure in
  Alcotest.(check bool) "objects untouched" true
    (Array.for_all2 Sim.Value.equal objs0 config.Sim.Config.objects);
  Alcotest.(check bool) "fps untouched" true (fps0 = config.Sim.Config.fps);
  Alcotest.(check bool) "closure reproducible after flat" true
    (closure1 = closure2);
  Alcotest.(check bool) "flat = closure" true (flat = closure1)

(* Flattening a closure run's final configuration vs replaying its
   recorded schedule on the slab: per-slot fingerprints and decisions
   must coincide (the slab's ids refine fingerprints, never disagree
   with them). *)
let test_fingerprint_parity () =
  List.iter
    (fun seed ->
      let p = Counter_consensus.protocol in
      let config = Protocol.initial_config p ~inputs:[ 0; 1; 0 ] in
      let r = Sim.Run.exec ~max_steps:400 (Sim.Sched.random ~seed) config in
      let script = Fuzz.Schedule.of_trace r.Sim.Run.trace in
      let flat = Sim.Flat.of_config ~roots:Sim.Flat.Per_slot config in
      let fr = Sim.Flat_run.exec_script ~script flat in
      let final = r.Sim.Run.config in
      Alcotest.(check (list int))
        (Printf.sprintf "decisions seed=%d" seed)
        (Sim.Config.decisions final)
        (Sim.Flat.decisions fr.Sim.Flat_run.flat);
      Array.iteri
        (fun pid fp ->
          Alcotest.(check int)
            (Printf.sprintf "fp pid=%d seed=%d" pid seed)
            fp
            (Sim.Flat.fingerprint fr.Sim.Flat_run.flat pid))
        final.Sim.Config.fps)
    [ 1; 7; 42 ]

(* Interned harness engine vs the closure walker: identical outcomes —
   history, realized pids, crash and stuck sets — across schedule
   families, crash injections, and the drain probe.  One shared
   runtime across all runs, as production uses it. *)
let test_harness_engine_differential () =
  let impls =
    [
      ("collect", Objimpl.Counters.collect);
      ("snapshot", Objimpl.Counters.snapshot);
      ("locked", Objimpl.Locked_counter.locked);
      ("leaky", Objimpl.Locked_counter.leaky);
    ]
  in
  let n = 3 in
  let ops = Objects.Counter.[ inc; dec; read ] in
  List.iter
    (fun (iname, impl) ->
      let rt = Objimpl.Harness.runtime impl ~n in
      let check_run tag schedule ~coin_seed ~crashes ~probe ~seed =
        let go engine =
          Objimpl.Harness.run ~engine ~rt impl ~n
            ~workload:
              (Objimpl.Harness.random_workload ~n ~calls:4 ~ops ~seed)
            ~schedule ~coin_seed ~max_steps:2_000 ~crashes ~probe ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s %s seed=%d" iname tag seed)
          true
          (go Objimpl.Harness.Interned = go Objimpl.Harness.Closure)
      in
      List.iter
        (fun seed ->
          check_run "random"
            (Objimpl.Harness.Random_sched seed)
            ~coin_seed:0 ~crashes:[] ~probe:true ~seed;
          check_run "starving"
            (Objimpl.Harness.Starving { victim = 1; seed; len = 200 })
            ~coin_seed:seed ~crashes:[] ~probe:true ~seed;
          check_run "crashing"
            (Objimpl.Harness.Random_sched seed)
            ~coin_seed:0
            ~crashes:[ (7, 0); (31, 2) ]
            ~probe:true ~seed)
        [ 1; 2; 3; 4; 5 ])
    impls

(* Fuzz scenarios: same seed, same drawn kind, identical run report
   (schedule + violation + steps) and identical replay verdict under
   both engines — consensus, linearizability (incl. the planted
   deadlock and the crashing kind), and a registry protocol routed
   through [find]. *)
let test_fuzz_engine_parity () =
  let names =
    [
      "flawed";
      "cas-1";
      "counter-3";
      "lin-collect-counter";
      "lin-consensus-swap";
      "lin-tas-rand";
      "lin-stuck-counter";
    ]
  in
  List.iter
    (fun name ->
      let sc e = Result.get_ok (Fuzz.Scenario.find ~engine:e name) in
      let c = sc `Closure and f = sc `Flat in
      let rc = Sim.Rng.create 42 and rf = Sim.Rng.create 42 in
      for i = 1 to 200 do
        let kc = Fuzz.Scenario.pick_kind Fuzz.Scenario.default_weights rc in
        let kf = Fuzz.Scenario.pick_kind Fuzz.Scenario.default_weights rf in
        Alcotest.(check string)
          (Printf.sprintf "%s kind %d" name i)
          (Fuzz.Scenario.kind_name kc)
          (Fuzz.Scenario.kind_name kf);
        let a = c.Fuzz.Scenario.gen rc kc in
        let b = f.Fuzz.Scenario.gen rf kf in
        Alcotest.(check bool)
          (Printf.sprintf "%s gen %d" name i)
          true (a = b);
        Alcotest.(check bool)
          (Printf.sprintf "%s replay %d" name i)
          true
          (c.Fuzz.Scenario.replay a.Fuzz.Scenario.schedule
          = f.Fuzz.Scenario.replay a.Fuzz.Scenario.schedule)
      done)
    names

let suite =
  [
    Alcotest.test_case "search: registry-wide flat = closure" `Quick
      test_search_registry_differential;
    Alcotest.test_case "search: key immutability under `Exact" `Quick
      test_key_immutability;
    Alcotest.test_case "flat fingerprints/decisions = closure replay" `Quick
      test_fingerprint_parity;
    Alcotest.test_case "harness: interned = closure outcomes" `Quick
      test_harness_engine_differential;
    Alcotest.test_case "fuzz: flat = closure gen/replay" `Quick
      test_fuzz_engine_parity;
  ]
