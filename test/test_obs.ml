(* Units for the observability layer: metric accumulators (counters,
   watermarks, power-of-two histograms, merging), sinks (memory ordering,
   atomic file flush), nested span timing with exception safety, the
   line-JSON dump, and the throttled progress heartbeat. *)

let contains = Test_util.contains

(* ---- Metrics ---- *)

let test_counters () =
  let m = Obs.Metrics.create () in
  Alcotest.(check int) "missing counter reads 0" 0 (Obs.Metrics.counter m "x");
  Obs.Metrics.add m "x" 3;
  Obs.Metrics.incr m "x";
  Obs.Metrics.add m "y" 1;
  Alcotest.(check int) "accumulated" 4 (Obs.Metrics.counter m "x");
  (* counters are monotonic: non-positive deltas are dropped, they never
     create a cell either *)
  Obs.Metrics.add m "x" (-10);
  Obs.Metrics.add m "zero" 0;
  Alcotest.(check int) "negative add ignored" 4 (Obs.Metrics.counter m "x");
  Alcotest.(check (list (pair string int)))
    "snapshot sorted by name, no zero cells"
    [ ("x", 4); ("y", 1) ]
    (Obs.Metrics.counters m)

let test_watermarks () =
  let m = Obs.Metrics.create () in
  Alcotest.(check int) "missing watermark reads 0" 0
    (Obs.Metrics.watermark m "d");
  Obs.Metrics.record_max m "d" 5;
  Obs.Metrics.record_max m "d" 3;
  Obs.Metrics.record_max m "d" 9;
  Alcotest.(check int) "keeps the max" 9 (Obs.Metrics.watermark m "d");
  Alcotest.(check (list (pair string int)))
    "snapshot" [ ("d", 9) ] (Obs.Metrics.watermarks m)

let test_histogram_buckets () =
  let m = Obs.Metrics.create () in
  Alcotest.(check bool) "missing histogram is None" true
    (Obs.Metrics.histogram m "h" = None);
  (* bucket bounds are inclusive upper edges 2^e, with one underflow
     bucket (bound 0) for non-positive samples: 3 and 4 land in the
     bucket bounded by 4; 0.5 in the one bounded by 0.5 *)
  List.iter (Obs.Metrics.observe m "h") [ 3.; 4.; 0.5; 0.; -2.5 ];
  match Obs.Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing after observe"
  | Some h ->
      Alcotest.(check int) "count" 5 h.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 5.0 h.Obs.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min" (-2.5) h.Obs.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 4.0 h.Obs.Metrics.max;
      Alcotest.(check (list (pair (float 1e-9) int)))
        "power-of-two buckets, increasing bounds"
        [ (0., 2); (0.5, 1); (4., 2) ]
        h.Obs.Metrics.buckets

let test_merge_into () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add a "c" 2;
  Obs.Metrics.add b "c" 3;
  Obs.Metrics.add b "only-b" 1;
  Obs.Metrics.record_max a "w" 7;
  Obs.Metrics.record_max b "w" 4;
  Obs.Metrics.observe a "h" 1.;
  Obs.Metrics.observe b "h" 100.;
  Obs.Metrics.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 5 (Obs.Metrics.counter a "c");
  Alcotest.(check int) "src-only counter copied" 1
    (Obs.Metrics.counter a "only-b");
  Alcotest.(check int) "watermarks max" 7 (Obs.Metrics.watermark a "w");
  (match Obs.Metrics.histogram a "h" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      Alcotest.(check int) "histogram counts add" 2 h.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "min of mins" 1. h.Obs.Metrics.min;
      Alcotest.(check (float 1e-9)) "max of maxes" 100. h.Obs.Metrics.max;
      Alcotest.(check int) "both buckets present" 2
        (List.length h.Obs.Metrics.buckets));
  (* src unchanged *)
  Alcotest.(check int) "src counter intact" 3 (Obs.Metrics.counter b "c");
  Alcotest.(check int) "src watermark intact" 4 (Obs.Metrics.watermark b "w")

(* ---- Sinks ---- *)

let test_memory_sink_ordering () =
  let s = Obs.Sink.memory () in
  Alcotest.(check bool) "memory enabled" true (Obs.Sink.enabled s);
  Alcotest.(check bool) "null disabled" false (Obs.Sink.enabled Obs.Sink.null);
  Obs.Sink.emit s "first";
  Obs.Sink.emit s "second";
  Obs.Sink.emit Obs.Sink.null "dropped";
  Alcotest.(check (list string)) "emission order" [ "first"; "second" ]
    (Obs.Sink.contents s);
  Alcotest.(check (list string)) "null keeps nothing" []
    (Obs.Sink.contents Obs.Sink.null)

let test_file_sink_atomic_flush () =
  let path = Filename.temp_file "randsync-obs" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = Obs.Sink.file path in
      Obs.Sink.emit s "line one";
      Obs.Sink.emit s "line two";
      Obs.Sink.flush s;
      let read () =
        let ic = open_in_bin path in
        let c = really_input_string ic (in_channel_length ic) in
        close_in ic;
        c
      in
      Alcotest.(check string) "newline-framed contents" "line one\nline two\n"
        (read ());
      (* the tmp staging file must not survive the rename *)
      Alcotest.(check bool) "no tmp litter" false (Sys.file_exists (path ^ ".tmp"));
      (* flushing again rewrites the same bytes *)
      Obs.Sink.flush s;
      Alcotest.(check string) "flush idempotent" "line one\nline two\n" (read ()))

(* ---- spans ---- *)

let test_span_nesting_and_exception_safety () =
  let sink = Obs.Sink.memory () in
  let obs = Obs.create ~sink () in
  let v =
    Obs.span (Some obs) "outer" (fun () ->
        Obs.span (Some obs) "inner" (fun () -> 42))
  in
  Alcotest.(check int) "span returns the body's value" 42 v;
  let count name =
    match Obs.Metrics.histogram (Obs.metrics obs) name with
    | Some h -> h.Obs.Metrics.count
    | None -> 0
  in
  Alcotest.(check int) "outer span recorded" 1 (count "span/outer");
  Alcotest.(check int) "nested path recorded" 1 (count "span/outer/inner");
  (* the sink sees one line per completed span, innermost first *)
  (match Obs.Sink.contents sink with
  | [ l1; l2 ] ->
      Alcotest.(check bool) "inner line first" true
        (contains l1 {|"name":"outer/inner"|});
      Alcotest.(check bool) "outer line second" true
        (contains l2 {|"name":"outer"|})
  | lines -> Alcotest.failf "expected 2 span lines, got %d" (List.length lines));
  (* a raising body still closes (and records) its span, and the path
     stack unwinds so later spans are not mis-nested under it *)
  (try Obs.span (Some obs) "boom" (fun () -> raise Exit)
   with Exit -> ());
  Obs.span (Some obs) "after" (fun () -> ());
  Alcotest.(check int) "raising span recorded" 1 (count "span/boom");
  Alcotest.(check int) "path unwound" 1 (count "span/after");
  Alcotest.(check int) "not nested under boom" 0 (count "span/boom/after");
  (* all helpers are no-ops on None *)
  Obs.add None "x" 1;
  Obs.incr None "x";
  Obs.record_max None "x" 1;
  Obs.observe None "x" 1.;
  Alcotest.(check int) "None span passes through" 7
    (Obs.span None "ghost" (fun () -> 7))

(* ---- dump ---- *)

let test_dump_line_json () =
  let sink = Obs.Sink.memory () in
  let obs = Obs.create ~sink () in
  Obs.add (Some obs) "b" 2;
  Obs.add (Some obs) "a" 1;
  Obs.record_max (Some obs) "depth" 5;
  Obs.observe (Some obs) "lat" 0.5;
  Obs.dump ~extra:[ ("cmd", "test"); ("k", "v") ] obs;
  match Obs.Sink.contents sink with
  | meta :: rest ->
      Alcotest.(check bool) "meta line first" true
        (contains meta {|"type":"meta"|} && contains meta {|"cmd":"test"|}
        && contains meta {|"k":"v"|});
      (* every line is one complete JSON object *)
      List.iter
        (fun l ->
          Alcotest.(check bool) ("framed: " ^ l) true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        (meta :: rest);
      let of_type ty =
        List.filter (fun l -> contains l ({|"type":"|} ^ ty ^ {|"|})) rest
      in
      (match of_type "counter" with
      | [ c1; c2 ] ->
          Alcotest.(check bool) "counters name-sorted" true
            (contains c1 {|"name":"a","value":1|}
            && contains c2 {|"name":"b","value":2|})
      | ls -> Alcotest.failf "expected 2 counter lines, got %d" (List.length ls));
      Alcotest.(check int) "one watermark line" 1
        (List.length (of_type "watermark"));
      (match of_type "histogram" with
      | [ h ] ->
          Alcotest.(check bool) "histogram carries buckets" true
            (contains h {|"name":"lat"|} && contains h {|"count":1|})
      | ls ->
          Alcotest.failf "expected 1 histogram line, got %d" (List.length ls))
  | [] -> Alcotest.fail "dump emitted nothing"

(* ---- progress heartbeat ---- *)

let read_file path =
  let ic = open_in_bin path in
  let c = really_input_string ic (in_channel_length ic) in
  close_in ic;
  c

let test_heartbeat_throttles () =
  let path = Filename.temp_file "randsync-obs" ".progress" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let out = open_out path in
      let h =
        Obs.Progress.heartbeat ~interval:3600. ~out
          ~render:(fun ~nodes ~steps ->
            Printf.sprintf "nodes=%d steps=%d" nodes steps)
          ()
      in
      (* first call prints immediately; the rest fall inside the interval *)
      h ~nodes:1 ~steps:2;
      h ~nodes:3 ~steps:4;
      h ~nodes:5 ~steps:6;
      close_out out;
      Alcotest.(check string) "exactly one heartbeat" "nodes=1 steps=2\n"
        (read_file path);
      (* a zero interval never throttles *)
      let out = open_out path in
      let h0 =
        Obs.Progress.heartbeat ~interval:0. ~out
          ~render:(fun ~nodes ~steps:_ -> string_of_int nodes)
          ()
      in
      h0 ~nodes:1 ~steps:0;
      h0 ~nodes:2 ~steps:0;
      close_out out;
      Alcotest.(check string) "unthrottled prints both" "1\n2\n"
        (read_file path))

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "watermarks" `Quick test_watermarks;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "merge_into" `Quick test_merge_into;
    Alcotest.test_case "memory sink ordering" `Quick test_memory_sink_ordering;
    Alcotest.test_case "file sink atomic flush" `Quick
      test_file_sink_atomic_flush;
    Alcotest.test_case "span nesting + exception safety" `Quick
      test_span_nesting_and_exception_safety;
    Alcotest.test_case "dump line-JSON" `Quick test_dump_line_json;
    Alcotest.test_case "heartbeat throttles" `Quick test_heartbeat_throttles;
  ]
