(* Registry-wide flat-engine sweep for the determinism executable
   (RANDSYNC_JOBS=2): [search_par ~state:`Flat] must be bit-identical
   across pool sizes — including [None] — and agree with the closure
   partitioned search and the sequential flat search on verdict and
   witness.  Per-subtree flat slabs are private to their task, so the
   merged result must not depend on how tasks land on domains. *)

open Consensus
open Test_par_determinism

(* [Test_par_determinism.project_result] plus the table counters — the
   flat engine's arena table must match the closure table node for
   node, and both must be jobs-invariant. *)
let project_tables (r : _ Mc.Explore.result) =
  (project_result r, r.Mc.Explore.table_hits, r.Mc.Explore.table_misses)

let smallest_n (p : Protocol.t) =
  let rec go n =
    if n > 8 then invalid_arg p.name
    else if p.supports_n n then n
    else go (n + 1)
  in
  go 2

let test_search_par_flat_registry () =
  List.iter
    (fun (p : Protocol.t) ->
      let n = smallest_n p in
      let inputs = List.init n (fun i -> i land 1) in
      List.iter
        (fun dedup ->
          let flat =
            across_pools (fun pool ->
                project_tables
                  (Mc.Explore.search_par ?pool ~state:`Flat ~dedup
                     ~max_depth:8 ~max_states:10_000 ~inputs:[ 0; 1 ]
                     (Protocol.initial_config p ~inputs)))
          in
          let closure =
            project_tables
              (Mc.Explore.search_par ~state:`Closure ~dedup ~max_depth:8
                 ~max_states:10_000 ~inputs:[ 0; 1 ]
                 (Protocol.initial_config p ~inputs))
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: par flat = par closure" p.name)
            true (flat = closure))
        [ `Off; `Exact; `Symmetric ])
    Registry.all

let suite =
  [
    Alcotest.test_case "search_par flat: registry jobs-invariance" `Quick
      test_search_par_flat_registry;
  ]
