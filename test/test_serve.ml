(* Chaos suite for lib/serve.  In-process tests drive Serve.Server.run
   on a unix socket in a temp dir: admission/shedding, cancellation,
   client churn, malformed-frame isolation, drain-respools-queued-work,
   restart resume.  Subprocess tests pin the process-level contract of
   `randsync serve`: SIGTERM drains to exit 0 with the metrics file
   dumped and the in-flight mc job checkpointed; kill -9 mid-job loses
   nothing a restarted server can't replay to verdicts byte-identical
   to a direct `randsync mc` run. *)

let binary = Filename.concat ".." "bin/randsync_cli.exe"

let contains = Test_util.contains

(* ---- scratch dirs and subprocess plumbing ---- *)

let mk_tmpdir () =
  let path = Filename.temp_file "randsync-serve" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

type run = { code : int; out : string }

let run_cli args =
  let out_file = Filename.temp_file "randsync-serve-cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_file with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s > %s 2>&1"
          (Filename.quote_command binary args)
          (Filename.quote out_file)
      in
      let code = Sys.command cmd in
      let ic = open_in_bin out_file in
      let out = really_input_string ic (in_channel_length ic) in
      close_in ic;
      { code; out })

let lines_of out =
  String.split_on_char '\n' out |> List.filter (fun l -> l <> "")

let await ?(timeout = 30.) ?(interval = 0.02) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay interval;
      go ()
    end
  in
  go ()

(* ---- job specs ---- *)

let mc_job ?(inputs = [ 0; 1 ]) ?(depth = 10) ?(max_states = 2_000_000)
    protocol =
  {
    Serve.Job.spec =
      Serve.Job.Mc
        {
          (Serve.Job.mc_defaults ~protocol) with
          Serve.Job.mc_inputs = inputs;
          mc_depth = depth;
          mc_max_states = max_states;
        };
    deadline = None;
  }

(* instant *)
let quick_job () = mc_job "counter-3"

(* effectively unbounded: only a cancel ends it *)
let endless_job () =
  mc_job ~inputs:[ 0; 1; 1; 0 ] ~depth:200 ~max_states:2_000_000_000
    "counter-3"

(* ~2s sequential, checkpoints every few ms: the interrupt/resume prop *)
let resumable_job () = mc_job ~depth:20 ~max_states:10_000_000 "rw-3n"

let resumable_cli_args =
  [ "mc"; "rw-3n"; "--inputs"; "0,1"; "--depth"; "20"; "--max-states";
    "10000000" ]

let fuzz_job () =
  {
    Serve.Job.spec =
      Serve.Job.Fuzz
        {
          (Serve.Job.fuzz_defaults ~scenario:"flawed") with
          Serve.Job.fz_runs = 40;
          fz_seed = 3;
        };
    deadline = None;
  }

(* ---- client helpers ---- *)

let with_conn addr f =
  match Serve.Client.connect addr with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c -> Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let roundtrip addr req =
  with_conn addr @@ fun c ->
  Serve.Client.send c req;
  Serve.Client.recv c

let submit_raw addr job =
  roundtrip addr (Serve.Wire.Submit { job; detach = true })

let submit_detached addr job =
  match submit_raw addr job with
  | Ok (Serve.Wire.Accepted { id }) -> id
  | Ok _ | Error _ -> Alcotest.fail "detached submit not accepted"

let cancel addr id =
  match roundtrip addr (Serve.Wire.Cancel { id }) with
  | Ok (Serve.Wire.Cancelled _) -> ()
  | Ok _ | Error _ -> Alcotest.failf "cancel of job %d failed" id

let job_state addr id =
  match roundtrip addr (Serve.Wire.Status { id = Some id }) with
  | Ok (Serve.Wire.Jobs { jobs = [ jl ]; _ }) -> Some jl.Serve.Wire.state
  | _ -> None

let drain addr =
  match roundtrip addr Serve.Wire.Drain with
  | Ok Serve.Wire.Draining -> ()
  | Ok _ | Error _ -> Alcotest.fail "drain not acknowledged"

(* ---- an in-process server on a throwaway unix socket ---- *)

let with_server ?(queue_limit = 64) ?(workers = 2) ?spool_dir f =
  let dir = mk_tmpdir () in
  let sock = Filename.concat dir "s.sock" in
  let cfg =
    {
      Serve.Server.address = `Unix sock;
      queue_limit;
      workers;
      spool_dir;
      obs = None;
      progress_interval = 0.05;
    }
  in
  let ready = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Serve.Server.run ~on_ready:(fun _ -> Atomic.set ready true) cfg)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (match Serve.Client.connect (`Unix sock) with
      | Ok c ->
          Serve.Client.send c Serve.Wire.Drain;
          ignore (Serve.Client.recv c);
          Serve.Client.close c
      | Error _ -> ());
      Thread.join th;
      rm_rf dir)
    (fun () ->
      await "server ready" (fun () -> Atomic.get ready);
      f (`Unix sock))

(* ---- in-process chaos ---- *)

(* served verdicts are the executor's verdicts are the CLI's verdicts *)
let test_round_trip_identity () =
  with_server @@ fun addr ->
  (match roundtrip addr Serve.Wire.Ping with
  | Ok Serve.Wire.Pong -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected pong");
  let check_identity name job =
    let direct = Serve.Job.execute job in
    match Serve.Client.submit_and_wait addr job with
    | Error e -> Alcotest.failf "%s: %s" name e
    | Ok (status, lines) ->
        Alcotest.(check int) (name ^ " wire status = exit code")
          direct.Serve.Job.status status;
        Alcotest.(check (list string)) (name ^ " verdict lines")
          direct.Serve.Job.lines lines
  in
  check_identity "mc" (quick_job ());
  check_identity "fuzz" (fuzz_job ());
  (* ... and byte-identical to the binary, including under --jobs *)
  let direct = Serve.Job.execute (quick_job ()) in
  let cli =
    run_cli
      [ "mc"; "counter-3"; "--inputs"; "0,1"; "--depth"; "10"; "--jobs"; "2" ]
  in
  Alcotest.(check int) "cli exit code" direct.Serve.Job.status cli.code;
  Alcotest.(check (list string)) "cli --jobs 2 lines" direct.Serve.Job.lines
    (lines_of cli.out)

(* a full admission queue sheds with an explicit reply; shedding is not
   sticky — capacity freed readmits *)
let test_shedding () =
  with_server ~queue_limit:1 ~workers:1 @@ fun addr ->
  let id1 = submit_detached addr (endless_job ()) in
  await "job 1 running" (fun () ->
      job_state addr id1 = Some Serve.Wire.Running);
  let id2 = submit_detached addr (endless_job ()) in
  (* Accepted is sent before the enqueue; wait until job 2 is visible *)
  await "job 2 queued" (fun () -> job_state addr id2 = Some Serve.Wire.Queued);
  (match submit_raw addr (endless_job ()) with
  | Ok (Serve.Wire.Overloaded { queued; limit }) ->
      Alcotest.(check int) "reported depth" 1 queued;
      Alcotest.(check int) "reported limit" 1 limit
  | Ok _ | Error _ -> Alcotest.fail "expected overloaded");
  cancel addr id2;
  (match submit_raw addr (quick_job ()) with
  | Ok (Serve.Wire.Accepted _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "freed capacity should admit");
  cancel addr id1

let test_cancel () =
  with_server ~workers:1 @@ fun addr ->
  let id = submit_detached addr (endless_job ()) in
  await "job running" (fun () -> job_state addr id = Some Serve.Wire.Running);
  cancel addr id;
  await "job cancelled" (fun () ->
      job_state addr id = Some Serve.Wire.Cancelled);
  (match Serve.Client.wait_result addr ~id with
  | Error e ->
      Alcotest.(check bool) "cancelled job is a loud error" true
        (contains e "cancelled")
  | Ok _ -> Alcotest.fail "cancelled job must not yield a verdict");
  (* unknown ids are loud too *)
  match roundtrip addr (Serve.Wire.Result { id = 999 }) with
  | Ok (Serve.Wire.Error { message }) ->
      Alcotest.(check bool) "names the missing job" true
        (contains message "no such job 999")
  | Ok _ | Error _ -> Alcotest.fail "expected an error reply"

(* a malformed frame costs its sender the connection — and nothing else *)
let test_malformed_frame_isolation () =
  with_server @@ fun addr ->
  let sock = match addr with `Unix p -> p | `Tcp _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc "{\"v\":1,\"type\":\"ping\"} trailing garbage\n";
  flush oc;
  (match input_line ic with
  | line -> (
      match Serve.Wire.decode_reply line with
      | Ok (Serve.Wire.Error { message }) ->
          Alcotest.(check bool) "reply names the bad frame" true
            (contains message "bad frame")
      | Ok _ | Error _ -> Alcotest.fail "expected an error reply")
  | exception End_of_file -> Alcotest.fail "no reply to the bad frame");
  (match input_line ic with
  | exception End_of_file -> ()
  | _ -> Alcotest.fail "sender should have been hung up on");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* the server is unharmed and other clients are served normally *)
  let direct = Serve.Job.execute (quick_job ()) in
  match Serve.Client.submit_and_wait addr (quick_job ()) with
  | Error e -> Alcotest.failf "healthy client hurt by someone else: %s" e
  | Ok (status, lines) ->
      Alcotest.(check int) "status" direct.Serve.Job.status status;
      Alcotest.(check (list string)) "lines" direct.Serve.Job.lines lines

(* an abrupt disconnect cancels the dead client's attached jobs and only
   those; detached jobs ride out any churn *)
let test_client_churn_isolation () =
  with_server ~workers:1 @@ fun addr ->
  let sock = match addr with `Unix p -> p | `Tcp _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc
    (Serve.Wire.encode_request
       (Serve.Wire.Submit { job = endless_job (); detach = false }));
  output_char oc '\n';
  flush oc;
  let id1 =
    match input_line ic with
    | line -> (
        match Serve.Wire.decode_reply line with
        | Ok (Serve.Wire.Accepted { id }) -> id
        | Ok _ | Error _ -> Alcotest.fail "attached submit not accepted")
    | exception End_of_file -> Alcotest.fail "no accept reply"
  in
  await "attached job running" (fun () ->
      job_state addr id1 = Some Serve.Wire.Running);
  let id2 = submit_detached addr (quick_job ()) in
  (* die without so much as a goodbye *)
  Unix.close fd;
  await "attached job cancelled by churn" (fun () ->
      job_state addr id1 = Some Serve.Wire.Cancelled);
  let direct = Serve.Job.execute (quick_job ()) in
  match Serve.Client.wait_result addr ~id:id2 with
  | Error e -> Alcotest.failf "detached job lost to churn: %s" e
  | Ok (status, lines) ->
      Alcotest.(check int) "detached status" direct.Serve.Job.status status;
      Alcotest.(check (list string)) "detached lines" direct.Serve.Job.lines
        lines

(* drain leaves running work checkpointed and queued work untouched in
   the spool; a restarted server replays both to the verdicts an
   uninterrupted life would have produced *)
let test_drain_respools_and_restart_resumes () =
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let spool = Filename.concat dir "spool" in
  let sock = Filename.concat dir "s.sock" in
  let cfg =
    {
      Serve.Server.address = `Unix sock;
      queue_limit = 64;
      workers = 1;
      spool_dir = Some spool;
      obs = None;
      progress_interval = 0.05;
    }
  in
  let start () =
    let ready = Atomic.make false in
    let th =
      Thread.create
        (fun () ->
          Serve.Server.run ~on_ready:(fun _ -> Atomic.set ready true) cfg)
        ()
    in
    await "server ready" (fun () -> Atomic.get ready);
    th
  in
  let th = start () in
  let id1 = submit_detached (`Unix sock) (resumable_job ()) in
  let id2 = submit_detached (`Unix sock) (quick_job ()) in
  await "first checkpoint written" (fun () ->
      Sys.file_exists (Filename.concat spool "job-1.ckpt"));
  (* drain mid-job; the same connection sees admission close *)
  (match Serve.Client.connect (`Unix sock) with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c ->
      Serve.Client.send c Serve.Wire.Drain;
      (match Serve.Client.recv c with
      | Ok Serve.Wire.Draining -> ()
      | Ok _ | Error _ -> Alcotest.fail "drain not acknowledged");
      Serve.Client.send c
        (Serve.Wire.Submit { job = quick_job (); detach = true });
      (match Serve.Client.recv c with
      | Ok Serve.Wire.Draining -> ()
      | Ok _ | Error _ -> Alcotest.fail "submit during drain not refused");
      Serve.Client.close c);
  Thread.join th;
  let spooled name = Sys.file_exists (Filename.concat spool name) in
  Alcotest.(check bool) "interrupted job still spooled" true
    (spooled "job-1.json");
  Alcotest.(check bool) "interrupted job has no verdict" false
    (spooled "job-1.verdict");
  Alcotest.(check bool) "queued job still spooled" true (spooled "job-2.json");
  Alcotest.(check bool) "queued job has no verdict" false
    (spooled "job-2.verdict");
  (* restart: both jobs replay to their uninterrupted verdicts *)
  let th2 = start () in
  Fun.protect
    ~finally:(fun () ->
      drain (`Unix sock);
      Thread.join th2)
    (fun () ->
      let expect1 = Serve.Job.execute (resumable_job ()) in
      let expect2 = Serve.Job.execute (quick_job ()) in
      (match Serve.Client.wait_result (`Unix sock) ~id:id1 with
      | Error e -> Alcotest.failf "job 1 not replayed: %s" e
      | Ok (status, lines) ->
          Alcotest.(check int) "resumed status" expect1.Serve.Job.status status;
          Alcotest.(check (list string)) "resumed lines byte-identical"
            expect1.Serve.Job.lines lines);
      match Serve.Client.wait_result (`Unix sock) ~id:id2 with
      | Error e -> Alcotest.failf "job 2 not replayed: %s" e
      | Ok (status, lines) ->
          Alcotest.(check int) "queued job status" expect2.Serve.Job.status
            status;
          Alcotest.(check (list string)) "queued job lines"
            expect2.Serve.Job.lines lines)

(* ---- the retry/backoff schedule (pure) ---- *)

let test_backoff_schedule () =
  let base = 0.05 and cap = 1.0 in
  let rng = Sim.Rng.create 7 in
  for k = 0 to 9 do
    let d = Serve.Client.backoff_delay ~base ~cap ~rng k in
    let nominal = base *. (2. ** float_of_int k) in
    Alcotest.(check bool)
      (Printf.sprintf "delay %d within [nominal/2, nominal] clipped to cap" k)
      true
      (d >= Float.min cap (nominal /. 2.) && d <= Float.min cap nominal)
  done;
  (* same seed, same schedule: the jitter is deterministic *)
  let schedule seed =
    let rng = Sim.Rng.create seed in
    List.init 8 (fun k -> Serve.Client.backoff_delay ~base ~cap ~rng k)
  in
  Alcotest.(check (list (float 0.))) "deterministic per seed" (schedule 3)
    (schedule 3);
  (* with_retry: attempts are counted, sleeps follow the capped curve *)
  let calls = ref 0 and slept = ref 0. in
  (match
     Serve.Client.with_retry ~attempts:4 ~base:0.1 ~cap:0.2 ~seed:1
       ~sleep:(fun d -> slept := !slept +. d)
       (fun k ->
         Alcotest.(check int) "attempt index" !calls k;
         incr calls;
         Error (`Retry "still down"))
   with
  | Error msg ->
      Alcotest.(check bool) "gives up loudly" true
        (contains msg "gave up after 4 attempts")
  | Ok _ -> Alcotest.fail "retry cannot succeed here");
  Alcotest.(check int) "all attempts spent" 4 !calls;
  Alcotest.(check bool)
    (Printf.sprintf "total sleep %.3f within 3 caps" !slept)
    true
    (!slept <= (0.2 *. 3.) +. 1e-9);
  (* non-retryable errors fail fast; success passes through *)
  let calls = ref 0 in
  (match
     Serve.Client.with_retry ~sleep:ignore (fun _ ->
         incr calls;
         Error (`Fail "boom"))
   with
  | Error "boom" -> ()
  | Error e -> Alcotest.failf "unexpected error %S" e
  | Ok _ -> Alcotest.fail "cannot succeed");
  Alcotest.(check int) "fail-fast, one attempt" 1 !calls;
  match
    Serve.Client.with_retry ~sleep:ignore (fun k ->
        if k < 2 then Error (`Retry "later") else Ok k)
  with
  | Ok 2 -> ()
  | Ok k -> Alcotest.failf "succeeded on attempt %d, expected 2" k
  | Error e -> Alcotest.failf "retry gave up: %s" e

(* ---- subprocess: the process-level contract of `randsync serve` ---- *)

let spawn_server ~sock ~spool ?metrics ~log () =
  let args =
    [ "serve"; "--socket"; sock; "--spool"; spool ]
    @ match metrics with Some m -> [ "--metrics"; m ] | None -> []
  in
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o600
  in
  let pid =
    Unix.create_process binary
      (Array.of_list (binary :: args))
      Unix.stdin logfd logfd
  in
  Unix.close logfd;
  pid

let reap pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* SIGTERM mid-job: exit 0, metrics dumped, job checkpointed + pending *)
let test_sigterm_drains_to_exit_zero () =
  let dir = mk_tmpdir () in
  let sock = Filename.concat dir "s.sock" in
  let spool = Filename.concat dir "spool" in
  let metrics = Filename.concat dir "metrics.json" in
  let log = Filename.concat dir "serve.log" in
  let pid = spawn_server ~sock ~spool ~metrics ~log () in
  Fun.protect
    ~finally:(fun () ->
      reap pid;
      rm_rf dir)
    (fun () ->
      await "server socket" (fun () -> Sys.file_exists sock);
      let id = submit_detached (`Unix sock) (resumable_job ()) in
      Alcotest.(check int) "first job id" 1 id;
      await "checkpoint written" (fun () ->
          Sys.file_exists (Filename.concat spool "job-1.ckpt"));
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n ->
          Alcotest.failf "drained server exited %d:\n%s" n (slurp log)
      | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
          Alcotest.failf "drained server killed:\n%s" (slurp log));
      (* the metrics sink is flushed on the signal path, atomically *)
      let m = slurp metrics in
      Alcotest.(check bool) "metrics dump marks the drain" true
        (contains m {|"cmd":"serve"|} && contains m {|"drained":"true"|});
      Alcotest.(check bool) "interrupt counted" true
        (contains m {|"name":"serve/interrupted"|});
      Alcotest.(check bool) "job left pending in the spool" true
        (Sys.file_exists (Filename.concat spool "job-1.json")
        && not (Sys.file_exists (Filename.concat spool "job-1.verdict"))))

(* kill -9 mid-job, restart, and the verdict comes out byte-identical to
   a direct CLI run — the crash-safety acceptance pin *)
let test_kill9_restart_resumes_byte_identical () =
  let dir = mk_tmpdir () in
  let sock = Filename.concat dir "s.sock" in
  let spool = Filename.concat dir "spool" in
  let log = Filename.concat dir "serve.log" in
  let pid = ref (spawn_server ~sock ~spool ~log ()) in
  Fun.protect
    ~finally:(fun () ->
      reap !pid;
      rm_rf dir)
    (fun () ->
      await "server socket" (fun () -> Sys.file_exists sock);
      let id = submit_detached (`Unix sock) (resumable_job ()) in
      await "checkpoint written" (fun () ->
          Sys.file_exists (Filename.concat spool "job-1.ckpt"));
      Unix.kill !pid Sys.sigkill;
      (match Unix.waitpid [] !pid with
      | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | _, _ -> Alcotest.failf "expected the server killed:\n%s" (slurp log));
      (* the source of truth: the same parameters through the binary *)
      let cli = run_cli resumable_cli_args in
      Alcotest.(check int) "direct run exits clean" 0 cli.code;
      pid := spawn_server ~sock ~spool ~log ();
      await "restarted server socket" (fun () -> Sys.file_exists sock);
      (match Serve.Client.wait_result (`Unix sock) ~id with
      | Error e -> Alcotest.failf "resumed job lost: %s\n%s" e (slurp log)
      | Ok (status, lines) ->
          Alcotest.(check int) "resumed status = CLI exit code" cli.code
            status;
          Alcotest.(check (list string)) "resumed verdict byte-identical"
            (lines_of cli.out) lines);
      Unix.kill !pid Sys.sigterm;
      match Unix.waitpid [] !pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.failf "restarted server did not drain clean:\n%s"
                  (slurp log))

(* wire-text honesty for non-ASCII payloads: a label carrying an astral
   code point survives the encode/decode pair as UTF-8 (the printer
   emits a surrogate-pair escape, the parser folds it back), and a
   client frame with a lone surrogate is rejected, not smuggled *)
let test_wire_unicode () =
  let grin = "\xf0\x9f\x98\x80" (* U+1F600 *) in
  let v = Serve.Json.Obj [ ("label", Serve.Json.String grin) ] in
  let wire = Serve.Json.to_string v in
  Alcotest.(check bool) "astral escape on the wire" true
    (Test_util.contains wire {|\ud83d\ude00|});
  (match Serve.Json.parse wire with
  | Ok v' -> Alcotest.(check bool) "decodes back to UTF-8" true (v' = v)
  | Error e -> Alcotest.failf "own output refused: %s" e);
  match Serve.Json.parse {|{"label":"\ud83d"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone surrogate accepted"

let suite =
  [
    Alcotest.test_case "wire unicode round-trip" `Quick test_wire_unicode;
    Alcotest.test_case "round trip + verdict identity" `Quick
      test_round_trip_identity;
    Alcotest.test_case "bounded queue sheds" `Quick test_shedding;
    Alcotest.test_case "cancel semantics" `Quick test_cancel;
    Alcotest.test_case "malformed frame isolation" `Quick
      test_malformed_frame_isolation;
    Alcotest.test_case "client churn isolation" `Quick
      test_client_churn_isolation;
    Alcotest.test_case "drain respools, restart resumes" `Quick
      test_drain_respools_and_restart_resumes;
    Alcotest.test_case "retry backoff schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "SIGTERM drains to exit 0" `Quick
      test_sigterm_drains_to_exit_zero;
    Alcotest.test_case "kill -9 resume is byte-identical" `Quick
      test_kill9_restart_resumes_byte_identical;
  ]
