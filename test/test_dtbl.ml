(* Property suite for the two-tier transposition table ([Mc.Dtbl]).
   The contract under test (dtbl.mli): [find] is exactly the
   [merge_meta]-fold of every [set] for that key — across hot-tier
   eviction, spills, compaction, close and reopen.  Plus the crash story:
   a torn log tail is recovered loudly (valid prefix survives, stats say
   so), while interior damage is corruption and raises
   [Sim.Trace_io.Parse_error]. *)

let fresh_dir =
  let ctr = ref 0 in
  fun tag ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "randsync-dtbl-%s-%d-%d" tag (Unix.getpid ()) !ctr)
    in
    Unix.mkdir d 0o755;
    d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* ---- generators ---- *)

let gen_value : Sim.Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Sim.Value.Unit;
            map (fun b -> Sim.Value.Bool b) bool;
            map (fun i -> Sim.Value.Int i) (int_range (-1000) 1000);
            map
              (fun k -> Sim.Value.Sym (Printf.sprintf "s%d" k))
              (int_bound 9);
          ]
      in
      if n <= 0 then leaf
      else
        oneof
          [
            leaf;
            map2
              (fun a b -> Sim.Value.Pair (a, b))
              (self (n / 2)) (self (n / 2));
            map (fun v -> Sim.Value.Opt (Some v)) (self (n / 2));
            return (Sim.Value.Opt None);
            map (fun vs -> Sim.Value.List vs) (list_size (0 -- 3) (self (n / 3)));
          ])

(* keys drawn from a small pool so sequences revisit keys and actually
   exercise merging *)
let gen_skey : Mc.Dtbl.Skey.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* fps = array_size (0 -- 4) (int_range (-100000) 100000) in
  let* objs = array_size (0 -- 3) gen_value in
  return (Mc.Dtbl.Skey.make ~fps ~objs)

let gen_meta : int QCheck.Gen.t =
  let open QCheck.Gen in
  map2
    (fun rd complete -> ((rd + 1) lsl 1) lor complete)
    (int_bound 30) (int_bound 1)

(* an op sequence over a pool of at most 8 keys *)
let gen_ops : (Mc.Dtbl.Skey.t * int) list QCheck.Gen.t =
  let open QCheck.Gen in
  let* pool = array_size (return 8) gen_skey in
  list_size (1 -- 120)
    (map2 (fun k m -> (pool.(k), m)) (int_bound 7) gen_meta)

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (fun ((k : Mc.Dtbl.Skey.t), m) ->
             Printf.sprintf "h=%d m=%d" k.Mc.Dtbl.Skey.hash m)
           ops))
    gen_ops

(* reference model: merge_meta-fold per key, in an association list *)
let model_set model k m =
  let rec go = function
    | [] -> [ (k, m) ]
    | (k', m') :: rest ->
        if Mc.Dtbl.Skey.equal k k' then (k', Mc.Dtbl.merge_meta m' m) :: rest
        else (k', m') :: go rest
  in
  go model

let model_find model k =
  List.find_map
    (fun (k', m) -> if Mc.Dtbl.Skey.equal k k' then Some m else None)
    model

let check_against_model ?(msg = "find = model") t model =
  List.iter
    (fun (k, expect) ->
      match Mc.Dtbl.find t k with
      | Some m when m = expect -> ()
      | got ->
          QCheck.Test.fail_reportf "%s: key h=%d expected %d got %s" msg
            k.Mc.Dtbl.Skey.hash expect
            (match got with None -> "None" | Some m -> string_of_int m))
    model

(* ---- qcheck: the table is the model, through every tier ---- *)

let prop_memory_model =
  QCheck.Test.make ~name:"in-memory table = merge-fold model" ~count:200
    arb_ops (fun ops ->
      let t = Mc.Dtbl.create () in
      let model =
        List.fold_left
          (fun model (k, m) ->
            Mc.Dtbl.set t k m;
            model_set model k m)
          [] ops
      in
      check_against_model t model;
      Mc.Dtbl.close t;
      true)

let prop_disk_model =
  QCheck.Test.make
    ~name:"spilling table = model, and survives reopen + compaction"
    ~count:120 arb_ops (fun ops ->
      let dir = fresh_dir "prop" in
      let path = Filename.concat dir "t.dtbl" in
      (* mem_entries 2: with an 8-key pool nearly every op spills *)
      let t = Mc.Dtbl.create ~path ~mem_entries:2 () in
      let model =
        List.fold_left
          (fun model (k, m) ->
            Mc.Dtbl.set t k m;
            model_set model k m)
          [] ops
      in
      check_against_model ~msg:"live" t model;
      Mc.Dtbl.compact t;
      check_against_model ~msg:"post-compaction" t model;
      Mc.Dtbl.close t;
      let t' = Mc.Dtbl.create ~path ~mem_entries:2 () in
      let st = Mc.Dtbl.stats t' in
      if st.Mc.Dtbl.lost_tail then
        QCheck.Test.fail_reportf "clean close reported a torn tail";
      check_against_model ~msg:"reopened" t' model;
      Mc.Dtbl.close t';
      true)

let prop_merge_meta =
  QCheck.Test.make
    ~name:"merge_meta: max of depths, or of complete bits" ~count:500
    QCheck.(pair (make gen_meta) (make gen_meta))
    (fun (a, b) ->
      let m = Mc.Dtbl.merge_meta a b in
      m = Mc.Dtbl.merge_meta b a
      && Mc.Dtbl.merge_meta a a = a
      && m lsr 1 = max (a lsr 1) (b lsr 1)
      && m land 1 = (a lor b) land 1)

(* ---- unit: eviction at mem_entries=1 never loses a verdict ---- *)

let test_eviction_never_loses () =
  let dir = fresh_dir "evict" in
  let t = Mc.Dtbl.create ~path:(Filename.concat dir "t.dtbl") ~mem_entries:1 () in
  let keys =
    Array.init 64 (fun i ->
        Mc.Dtbl.Skey.make ~fps:[| i; i * 7 |] ~objs:[| Sim.Value.Int i |])
  in
  Array.iteri (fun i k -> Mc.Dtbl.set t k (((i + 1) lsl 1) lor (i land 1))) keys;
  let st = Mc.Dtbl.stats t in
  Alcotest.(check bool) "hot cap of 1 forced spills" true (st.Mc.Dtbl.spills > 0);
  Array.iteri
    (fun i k ->
      Alcotest.(check (option int))
        (Printf.sprintf "key %d survives eviction" i)
        (Some (((i + 1) lsl 1) lor (i land 1)))
        (Mc.Dtbl.find t k))
    keys;
  Mc.Dtbl.close t

(* ---- unit: compaction folds duplicates and keeps answers ---- *)

let test_compaction_preserves () =
  let dir = fresh_dir "compact" in
  let t = Mc.Dtbl.create ~path:(Filename.concat dir "t.dtbl") ~mem_entries:1 () in
  let key i = Mc.Dtbl.Skey.make ~fps:[| i |] ~objs:[||] in
  (* each key set many times with varying depth: the log accumulates
     duplicates, the answer is the max *)
  for round = 1 to 10 do
    for i = 0 to 15 do
      Mc.Dtbl.set t (key i) (((i + round) lsl 1) lor (if round = 10 then 1 else 0))
    done
  done;
  Mc.Dtbl.flush t;
  let before = (Mc.Dtbl.stats t).Mc.Dtbl.disk_records in
  Mc.Dtbl.compact t;
  let st = Mc.Dtbl.stats t in
  Alcotest.(check bool) "compaction shrank the log" true
    (st.Mc.Dtbl.disk_records <= 16 && st.Mc.Dtbl.disk_records < before);
  Alcotest.(check bool) "compaction counted" true (st.Mc.Dtbl.compactions > 0);
  for i = 0 to 15 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d post-compaction" i)
      (Some (((i + 10) lsl 1) lor 1))
      (Mc.Dtbl.find t (key i))
  done;
  Mc.Dtbl.close t

(* ---- crash recovery: kill-9 tears at most a suffix ---- *)

let populated_log dir =
  let path = Filename.concat dir "t.dtbl" in
  let t = Mc.Dtbl.create ~path ~mem_entries:1 () in
  let key i = Mc.Dtbl.Skey.make ~fps:[| i; -i |] ~objs:[| Sim.Value.Int i |] in
  for i = 0 to 9 do
    Mc.Dtbl.set t (key i) ((i + 1) lsl 1)
  done;
  Mc.Dtbl.close t;
  (path, key)

let test_crash_recovery_torn_tail () =
  let dir = fresh_dir "torn" in
  let path, key = populated_log dir in
  let whole = read_file path in
  (* kill -9 mid-append: the last record loses its sentinel and part of
     its payload *)
  write_file path (String.sub whole 0 (String.length whole - 5));
  let t = Mc.Dtbl.create ~path () in
  let st = Mc.Dtbl.stats t in
  Alcotest.(check bool) "tail loss is reported" true st.Mc.Dtbl.lost_tail;
  Alcotest.(check int) "valid prefix recovered" 9 st.Mc.Dtbl.recovered;
  for i = 0 to 8 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d survives the tear" i)
      (Some ((i + 1) lsl 1))
      (Mc.Dtbl.find t (key i))
  done;
  (* recovery truncated the log: appending works and a further reopen is
     clean *)
  Mc.Dtbl.set t (key 9) ((9 + 1) lsl 1);
  Mc.Dtbl.close t;
  let t' = Mc.Dtbl.create ~path () in
  Alcotest.(check bool) "post-recovery log is clean" true
    (not (Mc.Dtbl.stats t').Mc.Dtbl.lost_tail);
  Alcotest.(check (option int)) "re-appended key readable" (Some ((9 + 1) lsl 1))
    (Mc.Dtbl.find t' (key 9));
  Mc.Dtbl.close t'

let test_interior_corruption_is_loud () =
  let dir = fresh_dir "corrupt" in
  let path, _ = populated_log dir in
  let whole = read_file path in
  (* flip a value token in an interior record: framing is intact, the
     hash check is what must catch it *)
  let damaged = Test_util.replace_first ~sub:"i3" ~by:"i4" whole in
  Alcotest.(check bool) "fixture actually damaged" true (damaged <> whole);
  write_file path damaged;
  (match Mc.Dtbl.create ~path () with
  | exception Sim.Trace_io.Parse_error _ -> ()
  | t ->
      Mc.Dtbl.close t;
      Alcotest.fail "interior corruption silently accepted");
  (* a foreign header is refused the same way *)
  write_file path ("not-a-dtbl v9\n" ^ whole);
  match Mc.Dtbl.create ~path () with
  | exception Sim.Trace_io.Parse_error _ -> ()
  | t ->
      Mc.Dtbl.close t;
      Alcotest.fail "foreign header silently accepted"

(* ---- codec round-trip (the byte-level sweep lives in
   test_codec_torture) ---- *)

let test_record_codec_round_trip () =
  let keys =
    [
      Mc.Dtbl.Skey.make ~fps:[||] ~objs:[||];
      Mc.Dtbl.Skey.make ~fps:[| min_int; -1; 0; 1; max_int |] ~objs:[||];
      Mc.Dtbl.Skey.make ~fps:[| 42 |]
        ~objs:
          [|
            Sim.Value.Unit;
            Sim.Value.Bool true;
            Sim.Value.Int (-7);
            Sim.Value.Sym "prefer";
            Sim.Value.Pair (Sim.Value.Int 1, Sim.Value.Opt None);
            Sim.Value.Opt (Some (Sim.Value.List [ Sim.Value.Int 2 ]));
            Sim.Value.List [];
          |];
    ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun m ->
          let k', m' = Mc.Dtbl.record_of_line (Mc.Dtbl.record_to_line k m) in
          Alcotest.(check bool) "record round-trips" true
            (Mc.Dtbl.Skey.equal k k' && m = m'))
        [ 2; 3; 63; ((30 + 1) lsl 1) lor 1 ])
    keys

let suite =
  [
    QCheck_alcotest.to_alcotest prop_memory_model;
    QCheck_alcotest.to_alcotest prop_disk_model;
    QCheck_alcotest.to_alcotest prop_merge_meta;
    Alcotest.test_case "eviction never loses a verdict" `Quick
      test_eviction_never_loses;
    Alcotest.test_case "compaction preserves lookups" `Quick
      test_compaction_preserves;
    Alcotest.test_case "torn tail recovers the valid prefix" `Quick
      test_crash_recovery_torn_tail;
    Alcotest.test_case "interior corruption raises" `Quick
      test_interior_corruption_is_loud;
    Alcotest.test_case "record codec round-trips" `Quick
      test_record_codec_round_trip;
  ]
