(* Properties of the transposition-table dedup (Mc.Explore ~dedup):
   turning it on may only change node counts and wall-clock — never the
   verdict, never the witness.  The suite pins that contract across a
   sweep of protocol instances, plus the fingerprint/history consistency
   the soundness argument rests on (see DESIGN.md). *)

open Consensus

let dedup_name = function
  | `Off -> "off"
  | `Exact -> "exact"
  | `Symmetric -> "symmetric"

let project_violation (r : int Mc.Explore.result) =
  match r.Mc.Explore.violation with
  | None -> None
  | Some v ->
      Some
        ( (match v.Mc.Explore.kind with
          | `Inconsistent -> "inconsistent"
          | `Invalid -> "invalid"),
          Sim.Trace.to_string string_of_int v.Mc.Explore.trace )

(* A mix of violating and violation-free instances, identical and
   pid-dependent, deterministic and randomized, exhaustive and
   depth-truncated. *)
let instances =
  [
    ("unanimous-rw-r1 [0;0;0]", Flawed.unanimous ~style:Flawed.Rw ~r:1, [ 0; 0; 0 ], 20);
    ("unanimous-rw-r1 [0;1]", Flawed.unanimous ~style:Flawed.Rw ~r:1, [ 0; 1 ], 20);
    ("unanimous-rw-r2 [0;0;0]", Flawed.unanimous ~style:Flawed.Rw ~r:2, [ 0; 0; 0 ], 24);
    ("unanimous-swap-r2 [0;0]", Flawed.unanimous ~style:Flawed.Swapping ~r:2, [ 0; 0 ], 18);
    ("first-writer-r1 [0;1]", Flawed.first_writer ~r:1, [ 0; 1 ], 20);
    ("first-writer-r2 [0;0;0]", Flawed.first_writer ~r:2, [ 0; 0; 0 ], 20);
    ("coin-rw-r2 [0;0]", Flawed.coin_retry ~style:Flawed.Rw ~r:2, [ 0; 0 ], 10);
    ("cas [0;1]", Cas_consensus.protocol, [ 0; 1 ], 30);
    ("tas2 [1;0]", Tas2.protocol, [ 1; 0 ], 30);
    ("cas [0;1;1] truncated", Cas_consensus.protocol, [ 0; 1; 1 ], 6);
  ]

let search dedup (p : Protocol.t) inputs max_depth =
  let config = Protocol.initial_config p ~inputs in
  Mc.Explore.search ~dedup ~max_depth ~inputs config

(* Dedup finds a violation iff Off does — and the SAME first witness:
   only violation-free subtrees are memoized and the traversal order is
   unchanged, so the leftmost violating path is reached identically. *)
let test_modes_agree () =
  List.iter
    (fun (name, p, inputs, max_depth) ->
      let reference = project_violation (search `Off p inputs max_depth) in
      List.iter
        (fun dedup ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s = off" name (dedup_name dedup))
            true
            (project_violation (search dedup p inputs max_depth) = reference))
        [ `Exact; `Symmetric ])
    instances

(* The table can only prune: nodes expanded with dedup never exceed the
   plain DFS's. *)
let test_dedup_never_expands_more () =
  List.iter
    (fun (name, p, inputs, max_depth) ->
      let off = (search `Off p inputs max_depth).Mc.Explore.visited in
      List.iter
        (fun dedup ->
          let v = (search dedup p inputs max_depth).Mc.Explore.visited in
          Alcotest.(check bool)
            (Printf.sprintf "%s: visited %s (%d) <= off (%d)" name
               (dedup_name dedup) v off)
            true (v <= off))
        [ `Exact; `Symmetric ])
    instances

(* Fingerprint/history consistency, the heart of the soundness argument:
   a process state is a function of its initial term and its consumed
   response/outcome history, and the fingerprint hashes exactly that
   history.  Run one identical-process protocol under many schedules,
   collect every (fingerprint, consumed history) pair, and check the two
   equivalences the model checker relies on: equal histories always give
   equal fingerprints (determinism of the mixing), and equal fingerprints
   only arise from equal histories (no collisions observed — 63-bit
   fingerprints make one astronomically unlikely, and any collision here
   would be a deterministic, reportable regression). *)
let test_fingerprint_matches_history () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:1 in
  let inputs = [ 0; 0; 0 ] in
  let history_of trace pid =
    List.filter_map
      (fun ev ->
        match ev with
        | Sim.Event.Applied { pid = p; resp; _ } when p = pid ->
            Some (Sim.Value.to_string resp)
        | Sim.Event.Coin { pid = p; outcome; _ } when p = pid ->
            Some (string_of_int outcome)
        | _ -> None)
      trace
  in
  let pairs =
    List.concat_map
      (fun seed ->
        let config = Protocol.initial_config p ~inputs in
        let result =
          Sim.Run.exec ~max_steps:40 (Sim.Sched.random ~seed) config
        in
        List.mapi
          (fun pid _ ->
            ( Sim.Config.fingerprint result.Sim.Run.config pid,
              history_of result.Sim.Run.trace pid ))
          inputs)
      (List.init 25 (fun i -> i + 1))
  in
  List.iteri
    (fun i (fp_a, h_a) ->
      List.iteri
        (fun j (fp_b, h_b) ->
          if i < j then begin
            if h_a = h_b then
              Alcotest.(check bool)
                (Printf.sprintf "equal histories -> equal fps (%d,%d)" i j)
                true (fp_a = fp_b);
            if fp_a = fp_b then
              Alcotest.(check bool)
                (Printf.sprintf "equal fps -> equal histories (%d,%d)" i j)
                true (h_a = h_b)
          end)
        pairs)
    pairs

(* Same protocol, different inputs: the seeded initial fingerprints keep
   differing initial terms apart even when the consumed histories
   coincide (both empty) — the [`Symmetric] precondition. *)
let test_seeds_separate_inputs () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:1 in
  let config = Protocol.initial_config p ~inputs:[ 0; 1 ] in
  Alcotest.(check bool)
    "different inputs, different initial fingerprints" false
    (Sim.Config.fingerprint config 0 = Sim.Config.fingerprint config 1);
  let config = Protocol.initial_config p ~inputs:[ 1; 1 ] in
  Alcotest.(check bool)
    "same input, same initial fingerprint" true
    (Sim.Config.fingerprint config 0 = Sim.Config.fingerprint config 1)

(* Over the full depth-1 tree enumeration, [check_inputs] answers the
   same under every dedup mode, for unanimous and mixed input vectors. *)
let test_enumerate_check_inputs_agrees () =
  let trees = Mc.Enumerate.enumerate_trees ~coins:true 1 in
  let disagreements = ref 0 in
  List.iter
    (fun t0 ->
      List.iter
        (fun t1 ->
          List.iter
            (fun inputs ->
              let off = Mc.Enumerate.check_inputs ~dedup:`Off t0 t1 inputs in
              if
                Mc.Enumerate.check_inputs ~dedup:`Exact t0 t1 inputs <> off
                || Mc.Enumerate.check_inputs ~dedup:`Symmetric t0 t1 inputs
                   <> off
              then incr disagreements)
            [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ])
        trees)
    trees;
  Alcotest.(check int) "no disagreement over depth-1 pairs" 0 !disagreements

(* Clones inherit their origin's fingerprint, so a clone is
   fingerprint-equal to its origin exactly while it shadows it. *)
let test_clone_fingerprints () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:1 in
  let inputs = [ 0; 0 ] in
  let config = Protocol.initial_config p ~inputs in
  let b = Lowerbound.Builder.create ~config ~inputs in
  Lowerbound.Builder.step b ~pid:0 ();
  let clone = Lowerbound.Builder.clone_of b ~pid:0 in
  let c = Lowerbound.Builder.config b in
  Alcotest.(check bool)
    "clone fp = origin fp" true
    (Sim.Config.fingerprint c clone = Sim.Config.fingerprint c 0);
  Alcotest.(check bool)
    "clone fp <> unstepped process fp" false
    (Sim.Config.fingerprint c clone = Sim.Config.fingerprint c 1)

let suite =
  [
    Alcotest.test_case "dedup modes agree with off (witness included)" `Quick
      test_modes_agree;
    Alcotest.test_case "dedup never expands more nodes" `Quick
      test_dedup_never_expands_more;
    Alcotest.test_case "fingerprint = consumed history" `Quick
      test_fingerprint_matches_history;
    Alcotest.test_case "fp seeds separate inputs" `Quick
      test_seeds_separate_inputs;
    Alcotest.test_case "enumerate check_inputs mode-independent" `Quick
      test_enumerate_check_inputs_agrees;
    Alcotest.test_case "clones inherit fingerprints" `Quick
      test_clone_fingerprints;
  ]
