(* Units for the resource-governance layer: cancellation tokens, budget
   construction, reason codecs, and the metering discipline (exact
   deterministic limits, poll-boundary best-effort limits, latching). *)

open Robust

let test_cancel_latch () =
  let c = Cancel.create () in
  Alcotest.(check bool) "fresh token unset" false (Cancel.is_set c);
  Cancel.set c;
  Alcotest.(check bool) "set" true (Cancel.is_set c);
  Cancel.set c;
  Alcotest.(check bool) "set is idempotent" true (Cancel.is_set c);
  (* tokens are independent *)
  Alcotest.(check bool) "fresh token unaffected" false
    (Cancel.is_set (Cancel.create ()))

let all_reasons = [ `Depth; `States; `Nodes; `Steps; `Deadline; `Cancelled ]

let test_reason_round_trip () =
  List.iter
    (fun r ->
      let s = Budget.reason_to_string r in
      Alcotest.(check bool) (s ^ " round-trips") true
        (Budget.reason_of_string s = Some r))
    all_reasons;
  Alcotest.(check bool) "garbage rejected" true
    (Budget.reason_of_string "out-of-coffee" = None);
  (* the six strings are pairwise distinct (a collision would corrupt
     checkpoint files silently) *)
  let strings = List.map Budget.reason_to_string all_reasons in
  Alcotest.(check int) "distinct strings" (List.length all_reasons)
    (List.length (List.sort_uniq compare strings))

let test_completeness_merge () =
  Alcotest.(check bool) "exhaustive is left identity" true
    (Budget.merge `Exhaustive (`Truncated `Depth) = `Truncated `Depth);
  Alcotest.(check bool) "first truncation wins" true
    (Budget.merge (`Truncated `Nodes) (`Truncated `Depth) = `Truncated `Nodes);
  Alcotest.(check bool) "exhaustive + exhaustive" true
    (Budget.merge `Exhaustive `Exhaustive = `Exhaustive);
  Alcotest.(check bool) "is_exhaustive" true
    (Budget.is_exhaustive `Exhaustive
    && not (Budget.is_exhaustive (`Truncated `Deadline)));
  Alcotest.(check string) "to_string truncated" "truncated (deadline)"
    (Budget.completeness_to_string (`Truncated `Deadline));
  Alcotest.(check string) "to_string exhaustive" "exhaustive"
    (Budget.completeness_to_string `Exhaustive)

let test_budget_construction () =
  Alcotest.(check bool) "unlimited" true (Budget.is_unlimited Budget.unlimited);
  Alcotest.(check bool) "nodes binds" false
    (Budget.is_unlimited (Budget.make ~nodes:5 ()));
  Alcotest.(check bool) "cancel binds" false
    (Budget.is_unlimited (Budget.make ~cancel:(Cancel.create ()) ()));
  let b = Budget.with_nodes (Budget.make ~nodes:5 ~steps:7 ()) 9 in
  Alcotest.(check bool) "with_nodes replaces nodes only" true
    (b.Budget.nodes = Some 9 && b.Budget.steps = Some 7);
  (* a relative deadline is stored as an absolute instant in the future *)
  let now = Unix.gettimeofday () in
  let b = Budget.make ~deadline:3600. () in
  Alcotest.(check bool) "deadline absolute" true
    (match b.Budget.deadline with Some d -> d > now +. 3000. | None -> false);
  (* negative deadlines clamp to "already due", not to the past epoch *)
  let b = Budget.make ~deadline:(-5.) () in
  Alcotest.(check bool) "negative deadline clamps to now" true
    (match b.Budget.deadline with Some d -> d >= now -. 1. | None -> false)

let test_node_limit_exact () =
  let m = Budget.Meter.create (Budget.make ~nodes:100 ()) in
  for i = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "tick %d under limit" i)
      true
      (Budget.Meter.tick_node m = None)
  done;
  Alcotest.(check int) "100 counted" 100 (Budget.Meter.nodes m);
  Alcotest.(check bool) "tick 101 trips" true
    (Budget.Meter.tick_node m = Some `Nodes);
  (* the tripped node is NOT counted: the trip point is the resume cursor *)
  Alcotest.(check int) "tripped node uncounted" 100 (Budget.Meter.nodes m);
  Alcotest.(check bool) "latched" true
    (Budget.Meter.tick_node m = Some `Nodes
    && Budget.Meter.tripped m = Some `Nodes)

let test_step_limit_and_latch_shared () =
  let m = Budget.Meter.create (Budget.make ~steps:3 ()) in
  for _ = 1 to 3 do
    Alcotest.(check bool) "step ok" true (Budget.Meter.tick_step m = None)
  done;
  Alcotest.(check bool) "step 4 trips" true
    (Budget.Meter.tick_step m = Some `Steps);
  (* the latch is per-meter, not per-axis: a tripped meter refuses node
     ticks too (a governed run is over, whichever limit ended it) *)
  Alcotest.(check bool) "node tick sees the latch" true
    (Budget.Meter.tick_node m = Some `Steps)

let test_cancel_polled_on_boundary () =
  let c = Cancel.create () in
  let m = Budget.Meter.create ~poll_every:4 (Budget.make ~cancel:c ()) in
  Alcotest.(check bool) "tick at 0 polls, token unset" true
    (Budget.Meter.tick_node m = None);
  Cancel.set c;
  (* counts 1..3 are off the poll boundary: the set token is not yet
     observed — by design, cancellation is best-effort *)
  for _ = 1 to 3 do
    Alcotest.(check bool) "off-boundary tick proceeds" true
      (Budget.Meter.tick_node m = None)
  done;
  Alcotest.(check bool) "boundary tick observes cancellation" true
    (Budget.Meter.tick_node m = Some `Cancelled);
  Alcotest.(check int) "cancelled node uncounted" 4 (Budget.Meter.nodes m)

let test_poll_every_rounds_to_pow2 () =
  (* poll_every:5 rounds up to 8: after the initial boundary poll, a token
     set mid-stride is observed exactly when the count reaches 8 *)
  let c = Cancel.create () in
  let m = Budget.Meter.create ~poll_every:5 (Budget.make ~cancel:c ()) in
  Alcotest.(check bool) "initial poll" true (Budget.Meter.tick_node m = None);
  Cancel.set c;
  for i = 2 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "tick %d off-boundary" i)
      true
      (Budget.Meter.tick_node m = None)
  done;
  Alcotest.(check bool) "tick 9 (count 8) trips" true
    (Budget.Meter.tick_node m = Some `Cancelled)

let test_deadline_trips_and_sets_cancel () =
  let c = Cancel.create () in
  let m =
    Budget.Meter.create ~poll_every:1
      (Budget.make ~deadline:0.02 ~cancel:c ())
  in
  Alcotest.(check bool) "before the deadline" true
    (Budget.Meter.tick_node m = None);
  Unix.sleepf 0.05;
  Alcotest.(check bool) "after the deadline" true
    (Budget.Meter.tick_node m = Some `Deadline);
  (* the deadline trip propagates to the cancel token so pool siblings
     sharing the budget stop claiming chunks *)
  Alcotest.(check bool) "cancel token set by the trip" true (Cancel.is_set c)

let test_zero_deadline_trips_first_poll () =
  (* the regression pin: the deadline check is [>=], so an already-due
     deadline trips the very first poll even when gettimeofday returns
     the same instant [make] stamped — a strict [>] made ~deadline:0.
     (and CLI --deadline 0s) depend on clock granularity *)
  let m = Budget.Meter.create ~poll_every:1 (Budget.make ~deadline:0. ()) in
  Alcotest.(check bool) "first tick trips" true
    (Budget.Meter.tick_node m = Some `Deadline);
  Alcotest.(check int) "no node admitted" 0 (Budget.Meter.nodes m);
  (* step ticks see the same horizon *)
  let m = Budget.Meter.create ~poll_every:1 (Budget.make ~deadline:0. ()) in
  Alcotest.(check bool) "first step tick trips" true
    (Budget.Meter.tick_step m = Some `Deadline)

let test_on_poll_hook_and_polls_counter () =
  (* the --progress vehicle: a budget carrying only an observer hook is
     not unlimited (it needs a meter for its cadence), the hook fires
     once per poll boundary with the consumed counts, and [polls]
     counts exactly those boundary checks *)
  let fired = ref [] in
  let b =
    Budget.make
      ~on_poll:(fun ~nodes ~steps -> fired := (nodes, steps) :: !fired)
      ()
  in
  Alcotest.(check bool) "observer-only budget binds" false
    (Budget.is_unlimited b);
  let m = Budget.Meter.create ~poll_every:2 b in
  for _ = 1 to 5 do
    Alcotest.(check bool) "observer never trips" true
      (Budget.Meter.tick_node m = None)
  done;
  (* boundaries at counts 0, 2, 4 *)
  Alcotest.(check int) "three polls" 3 (Budget.Meter.polls m);
  Alcotest.(check (list (pair int int)))
    "hook saw the consumed counts"
    [ (4, 0); (2, 0); (0, 0) ]
    !fired

let test_guard_raises () =
  let m = Budget.Meter.create (Budget.make ~nodes:1 ()) in
  Budget.Meter.guard_node m;
  Alcotest.check_raises "guard raises Exhausted" (Budget.Exhausted `Nodes)
    (fun () -> Budget.Meter.guard_node m)

let test_unlimited_meter_never_trips () =
  let m = Budget.Meter.create Budget.unlimited in
  for _ = 1 to 10_000 do
    assert (Budget.Meter.tick_node m = None);
    assert (Budget.Meter.tick_step m = None)
  done;
  Alcotest.(check int) "all counted" 10_000 (Budget.Meter.nodes m)

let test_take_nodes_batches () =
  let m = Budget.Meter.create (Budget.make ~nodes:10 ()) in
  Alcotest.(check int) "full batch admitted" 4 (Budget.Meter.take_nodes m 4);
  Alcotest.(check int) "second batch admitted" 4 (Budget.Meter.take_nodes m 4);
  (* only 2 of the last 4 fit; the short count reports the trip *)
  Alcotest.(check int) "partial batch" 2 (Budget.Meter.take_nodes m 4);
  Alcotest.(check bool) "meter tripped" true
    (Budget.Meter.tripped m = Some `Nodes);
  Alcotest.(check int) "nothing after the trip" 0 (Budget.Meter.take_nodes m 4);
  Alcotest.(check int) "exactly the budget was counted" 10
    (Budget.Meter.nodes m);
  (* unlimited: every batch admitted in full *)
  let u = Budget.Meter.create Budget.unlimited in
  Alcotest.(check int) "unlimited admits all" 1000
    (Budget.Meter.take_nodes u 1000)

let suite =
  [
    Alcotest.test_case "cancel token latch" `Quick test_cancel_latch;
    Alcotest.test_case "take_nodes batches" `Quick test_take_nodes_batches;
    Alcotest.test_case "reason string round-trip" `Quick test_reason_round_trip;
    Alcotest.test_case "completeness merge" `Quick test_completeness_merge;
    Alcotest.test_case "budget construction" `Quick test_budget_construction;
    Alcotest.test_case "node limit is exact" `Quick test_node_limit_exact;
    Alcotest.test_case "step limit, shared latch" `Quick
      test_step_limit_and_latch_shared;
    Alcotest.test_case "cancel polled on boundary" `Quick
      test_cancel_polled_on_boundary;
    Alcotest.test_case "poll_every rounds to pow2" `Quick
      test_poll_every_rounds_to_pow2;
    Alcotest.test_case "deadline trips, sets cancel" `Quick
      test_deadline_trips_and_sets_cancel;
    Alcotest.test_case "zero deadline trips first poll" `Quick
      test_zero_deadline_trips_first_poll;
    Alcotest.test_case "on_poll hook + polls counter" `Quick
      test_on_poll_hook_and_polls_counter;
    Alcotest.test_case "guard raises Exhausted" `Quick test_guard_raises;
    Alcotest.test_case "unlimited meter never trips" `Quick
      test_unlimited_meter_never_trips;
  ]
