open Sim
open Objects

(* A tiny deterministic protocol: write pid+input to own register, read
   neighbour, decide sum of what was seen (not consensus — just exercise
   machinery). *)
let tiny_code ~pid ~input : int Proc.t =
  let open Proc in
  let* _ = apply pid (Register.write_int input) in
  let* v = apply (1 - pid) Register.read in
  let seen = match v with Value.Int i -> i | _ -> -1 in
  decide ((10 * input) + seen)

let tiny_config inputs =
  Config.make
    ~optypes:[ Register.optype (); Register.optype () ]
    ~procs:(List.mapi (fun pid input -> tiny_code ~pid ~input) inputs)

let test_round_robin_completes () =
  let result = Run.exec (Sched.round_robin ()) (tiny_config [ 1; 2 ]) in
  Alcotest.(check bool) "all decided" true (result.Run.outcome = Run.All_decided);
  (* round robin: P0 writes, P1 writes, P0 reads 2, P1 reads 1 *)
  Alcotest.(check (list int))
    "decisions" [ 12; 21 ]
    (Config.decisions result.Run.config)

let test_solo_sees_nothing () =
  let result = Run.exec (Sched.solo ~pid:0 ~seed:1) (tiny_config [ 1; 2 ]) in
  Alcotest.(check bool)
    "scheduler stops with P1 pending" true
    (result.Run.outcome = Run.Scheduler_stopped);
  (* P0 wrote 1, read unwritten neighbour: 10 + (-1) = 9 *)
  Alcotest.(check (option int))
    "P0 decided alone" (Some 9)
    (Config.decision result.Run.config 0)

let test_trace_records_everything () =
  let result = Run.exec (Sched.round_robin ()) (tiny_config [ 0; 1 ]) in
  let trace = result.Run.trace in
  Alcotest.(check int) "4 applies" 4 (List.length (Trace.applied_ops trace));
  Alcotest.(check int) "2 decisions" 2 (List.length (Trace.decisions trace));
  Alcotest.(check int) "steps counted" 4 (Trace.steps trace);
  Alcotest.(check (list int)) "pids" [ 0; 1 ] (Trace.pids trace)

let test_halt_excludes () =
  let config = Config.halt (tiny_config [ 1; 2 ]) 1 in
  let result = Run.exec (Sched.round_robin ()) config in
  Alcotest.(check bool) "completes" true (result.Run.outcome = Run.All_decided);
  Alcotest.(check (option int)) "P1 never decided" None
    (Config.decision result.Run.config 1);
  Alcotest.(check bool) "P0 decided" true
    (Config.decision result.Run.config 0 <> None)

let test_max_steps () =
  (* a spinning protocol never finishes *)
  let rec spin () : int Proc.t =
    let open Proc in
    let* _ = apply 0 Register.read in
    spin ()
  in
  let config = Config.make ~optypes:[ Register.optype () ] ~procs:[ spin () ] in
  let result = Run.exec ~max_steps:50 (Sched.round_robin ()) config in
  Alcotest.(check bool) "hits bound" true (result.Run.outcome = Run.Max_steps);
  Alcotest.(check int) "exactly 50" 50 result.Run.steps

let test_step_disabled () =
  let config =
    Config.make ~optypes:[ Register.optype () ] ~procs:[ Proc.decide 3 ]
  in
  match Run.step config ~pid:0 ~coin:(fun _ -> 0) with
  | exception Run.Step_disabled 0 -> ()
  | _ -> Alcotest.fail "expected Step_disabled"

let test_coin_out_of_range () =
  let config =
    Config.make ~optypes:[] ~procs:[ Proc.(bind flip (fun b -> decide (Bool.to_int b))) ]
  in
  match Run.step config ~pid:0 ~coin:(fun _ -> 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-range rejection"

let test_pure_fast_equivalent =
  (* the two runners produce identical traces for identical seeds *)
  QCheck.Test.make ~name:"pure/fast runners agree" ~count:50
    QCheck.(pair (int_bound 10_000) (list_of_size Gen.(1 -- 4) (int_bound 1)))
    (fun (seed, inputs) ->
      QCheck.assume (inputs <> []);
      let inputs = if List.length inputs = 1 then [ 0; 1 ] else inputs in
      let inputs = List.filteri (fun i _ -> i < 2) inputs in
      let mk () = tiny_config inputs in
      let r1 = Run.exec (Sched.random ~seed) (mk ()) in
      let r2 = Run.exec_fast (Sched.random ~seed) (mk ()) in
      r1.Run.trace = r2.Run.trace
      && Config.decisions r1.Run.config = Config.decisions r2.Run.config)
  |> QCheck_alcotest.to_alcotest

let test_add_proc () =
  let config = tiny_config [ 1; 2 ] in
  let config', pid = Config.add_proc config (tiny_code ~pid:0 ~input:7) in
  Alcotest.(check int) "new pid" 2 pid;
  Alcotest.(check int) "grown" 3 (Config.n_procs config');
  Alcotest.(check int) "original untouched" 2 (Config.n_procs config);
  let result = Run.exec (Sched.round_robin ()) config' in
  Alcotest.(check bool) "still runs" true (result.Run.outcome = Run.All_decided)

let test_outcome_string_round_trip () =
  (* [all_outcomes] covers the variant (the exhaustive match inside
     [outcome_to_string] keeps it honest at compile time), and the codec
     is its own inverse — durable formats re-parse what they print *)
  List.iter
    (fun outcome ->
      let s = Run.outcome_to_string outcome in
      Alcotest.(check bool) (s ^ " round-trips") true
        (Run.outcome_of_string s = Some outcome))
    Run.all_outcomes;
  let strings = List.map Run.outcome_to_string Run.all_outcomes in
  Alcotest.(check int) "outcome strings distinct"
    (List.length Run.all_outcomes)
    (List.length (List.sort_uniq compare strings));
  Alcotest.(check bool) "garbage rejected" true
    (Run.outcome_of_string "gave-up" = None
    && Run.outcome_of_string "" = None)

let test_poised_at () =
  let config = tiny_config [ 1; 2 ] in
  Alcotest.(check (list int)) "P0 at reg0" [ 0 ] (Config.poised_at config 0);
  Alcotest.(check (list int)) "P1 at reg1" [ 1 ] (Config.poised_at config 1);
  (* after P0's write, P0 is poised at reg 1 (reading) *)
  let config', _ = Run.step config ~pid:0 ~coin:(fun _ -> 0) in
  Alcotest.(check (list int)) "both at reg1" [ 0; 1 ] (Config.poised_at config' 1)

let suite =
  [
    Alcotest.test_case "round robin completes" `Quick test_round_robin_completes;
    Alcotest.test_case "solo scheduler" `Quick test_solo_sees_nothing;
    Alcotest.test_case "trace records" `Quick test_trace_records_everything;
    Alcotest.test_case "halted process excluded" `Quick test_halt_excludes;
    Alcotest.test_case "max steps" `Quick test_max_steps;
    Alcotest.test_case "step disabled raises" `Quick test_step_disabled;
    Alcotest.test_case "coin range checked" `Quick test_coin_out_of_range;
    test_pure_fast_equivalent;
    Alcotest.test_case "add_proc" `Quick test_add_proc;
    Alcotest.test_case "outcome string round-trip" `Quick
      test_outcome_string_round_trip;
    Alcotest.test_case "poised_at" `Quick test_poised_at;
  ]
