(* Checkpoint/resume: the codec round-trips, malformed files are refused
   loudly, and — the contract that makes checkpoints worth having — a
   budget-interrupted search resumed from its final checkpoint produces
   exactly the result of an uninterrupted run (under [`Off] dedup). *)

open Consensus

let state : Mc.Checkpoint.state Alcotest.testable =
  Alcotest.testable
    (fun ppf (s : Mc.Checkpoint.state) ->
      Format.fprintf ppf "visited=%d leaves=%d path=%d" s.visited s.leaves
        (List.length s.path))
    ( = )

(* ---- codec ---- *)

let test_codec_round_trip () =
  let s =
    {
      Mc.Checkpoint.visited = 12345;
      leaves = 67;
      table_hits = 8;
      max_depth_seen = 21;
      trunc = 3;
      reason = Some `Deadline;
      path = [ (0, 0); (2, 1); (1, 3) ];
    }
  in
  let scenario = "mc protocol=cas-1 inputs=0,1 depth=40 dedup=off" in
  let scenario', s' = Mc.Checkpoint.of_text (Mc.Checkpoint.to_text ~scenario s) in
  Alcotest.(check string) "scenario preserved" scenario scenario';
  Alcotest.check state "state preserved" s s';
  (* the empty state (no reason, empty path) round-trips too *)
  let scenario', s' =
    Mc.Checkpoint.of_text (Mc.Checkpoint.to_text ~scenario Mc.Checkpoint.empty)
  in
  Alcotest.(check string) "scenario preserved (empty)" scenario scenario';
  Alcotest.check state "empty state preserved" Mc.Checkpoint.empty s'

let expect_parse_error name text =
  match Mc.Checkpoint.of_text text with
  | exception Sim.Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: accepted a malformed checkpoint" name

let test_codec_rejects_malformed () =
  let valid = Mc.Checkpoint.to_text ~scenario:"s" Mc.Checkpoint.empty in
  expect_parse_error "empty" "";
  expect_parse_error "wrong version"
    (Test_util.replace_first ~sub:"v2" ~by:"v9" valid);
  expect_parse_error "bad reason"
    (Test_util.replace_first ~sub:"reason -" ~by:"reason zeal" valid);
  expect_parse_error "truncated file" "randsync-checkpoint v1\nscenario s";
  expect_parse_error "bad path element"
    (Test_util.replace_first ~sub:"path " ~by:"path 1:2:3 " valid);
  expect_parse_error "bad integer"
    (Test_util.replace_first ~sub:"visited 0" ~by:"visited x" valid);
  (* a scenario with a newline would corrupt the line format: refused at
     write time, not quietly split *)
  match Mc.Checkpoint.to_text ~scenario:"a\nb" Mc.Checkpoint.empty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "newline in scenario accepted"

(* ---- save/load ---- *)

let test_save_load_atomic () =
  let path = Filename.temp_file "randsync-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = { Mc.Checkpoint.empty with visited = 42; path = [ (1, 0) ] } in
      Mc.Checkpoint.save ~path ~scenario:"sc" s;
      let scenario', s' = Mc.Checkpoint.load ~path in
      Alcotest.(check string) "scenario" "sc" scenario';
      Alcotest.check state "state" s s';
      (* overwrite goes through a tmp file + rename: no partial states *)
      Mc.Checkpoint.save ~path ~scenario:"sc" { s with visited = 43 };
      let _, s'' = Mc.Checkpoint.load ~path in
      Alcotest.(check int) "overwritten" 43 s''.Mc.Checkpoint.visited;
      Alcotest.(check bool) "no tmp litter" false (Sys.file_exists (path ^ ".tmp")))

(* file-level negative paths: a damaged checkpoint file must fail loudly
   at load, with the offending content named — never parse into a wrong
   resume cursor *)
let test_load_rejects_damaged_files () =
  let path = Filename.temp_file "randsync-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = { Mc.Checkpoint.empty with visited = 99; path = [ (1, 0); (0, 2) ] } in
      Mc.Checkpoint.save ~path ~scenario:"sc" s;
      let valid = Sim.Trace_io.load_text ~path in
      let expect_load_error name text =
        Sim.Trace_io.save_text ~path text;
        match Mc.Checkpoint.load ~path with
        | exception Sim.Trace_io.Parse_error msg ->
            Alcotest.(check bool)
              (name ^ ": error names the problem")
              true (String.length msg > 0)
        | scenario, s' ->
            Alcotest.failf "%s: silently loaded scenario=%s visited=%d" name
              scenario s'.Mc.Checkpoint.visited
      in
      (* corrupt: random bytes where the header should be *)
      expect_load_error "corrupt file" "\x00\xffgarbage\nnot a checkpoint\n";
      (* truncated: the first half of a valid file, cut mid-line *)
      expect_load_error "truncated file"
        (String.sub valid 0 (String.length valid / 2));
      (* a single flipped digit inside a counter field *)
      expect_load_error "corrupt counter"
        (Test_util.replace_first ~sub:"visited 99" ~by:"visited 9g" valid);
      (* the original still loads after all that overwriting *)
      Sim.Trace_io.save_text ~path valid;
      let scenario', s' = Mc.Checkpoint.load ~path in
      Alcotest.(check string) "pristine file still loads" "sc" scenario';
      Alcotest.check state "pristine state intact" s s')

(* the scenario stamp is what the CLI matches before resuming; a stamp for
   a different search must come back verbatim, not normalized into an
   accidental match (the CLI-level refusal is covered in test_cli) *)
let test_scenario_stamp_verbatim () =
  let path = Filename.temp_file "randsync-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let stamp = "mc protocol=cas-1 inputs=0,1 depth=40 max-states=5 dedup=off" in
      Mc.Checkpoint.save ~path ~scenario:stamp Mc.Checkpoint.empty;
      let scenario', _ = Mc.Checkpoint.load ~path in
      Alcotest.(check string) "stamp round-trips byte for byte" stamp scenario')

(* ---- resume = uninterrupted (the tentpole pin) ---- *)

let project (r : _ Mc.Explore.result) =
  ( r.Mc.Explore.visited,
    r.Mc.Explore.leaves,
    r.Mc.Explore.table_hits,
    r.Mc.Explore.max_depth_seen,
    r.Mc.Explore.truncated,
    Robust.Budget.completeness_to_string r.Mc.Explore.completeness,
    r.Mc.Explore.violation = None )

let search ?budget ?on_checkpoint ?checkpoint_every ?resume () =
  let config =
    Protocol.initial_config Counter_consensus.protocol ~inputs:[ 0; 1 ]
  in
  Mc.Explore.search ?budget ?on_checkpoint ?checkpoint_every ?resume
    ~dedup:`Off ~max_depth:9 ~inputs:[ 0; 1 ] config

let test_resume_equals_uninterrupted () =
  let base = project (search ()) in
  let total = match base with v, _, _, _, _, _, _ -> v in
  Alcotest.(check bool) "scenario is nontrivial" true (total > 1_000);
  List.iter
    (fun k ->
      let last = ref None in
      let interrupted =
        search
          ~budget:(Robust.Budget.make ~nodes:k ())
          ~on_checkpoint:(fun s -> last := Some s)
          ()
      in
      Alcotest.(check int)
        (Printf.sprintf "nodes=%d: visited exactly k" k)
        k interrupted.Mc.Explore.visited;
      Alcotest.(check string)
        (Printf.sprintf "nodes=%d: truncated verdict" k)
        "truncated (nodes)"
        (Robust.Budget.completeness_to_string interrupted.Mc.Explore.completeness);
      let resume =
        match !last with
        | Some s -> s
        | None -> Alcotest.failf "nodes=%d: no final checkpoint emitted" k
      in
      Alcotest.(check int)
        (Printf.sprintf "nodes=%d: checkpoint counters match the result" k)
        interrupted.Mc.Explore.visited resume.Mc.Checkpoint.visited;
      let resumed = project (search ~resume ()) in
      Alcotest.(check bool)
        (Printf.sprintf "nodes=%d: resume = uninterrupted, all fields" k)
        true (resumed = base))
    (* the depth-9 dedup-off tree holds 1533 nodes; every allowance must
       actually trip, so the largest sits just under that count *)
    [ 1; 2; 17; 100; 1024; 1500 ]

let test_resume_from_periodic_checkpoints () =
  (* every periodic checkpoint along an (uninterrupted) run is a valid
     cursor: resuming from any of them reproduces the full result *)
  let captured = ref [] in
  let base =
    project
      (search ~checkpoint_every:128 ~on_checkpoint:(fun s ->
           captured := s :: !captured)
         ())
  in
  let states = !captured in
  Alcotest.(check bool) "several checkpoints captured" true
    (List.length states >= 3);
  let pick = [ List.hd states; List.nth states (List.length states / 2) ] in
  List.iter
    (fun resume ->
      let resumed = project (search ~resume ()) in
      Alcotest.(check bool)
        (Printf.sprintf "resume from visited=%d" resume.Mc.Checkpoint.visited)
        true (resumed = base))
    pick

let test_resume_finds_the_violation () =
  (* interrupting before the planted bug must not lose it: the resumed run
     reports the same witness as the uninterrupted one *)
  let p = Flawed.first_writer ~r:1 in
  let config () = Protocol.initial_config p ~inputs:[ 0; 1 ] in
  let go ?budget ?on_checkpoint ?resume () =
    Mc.Explore.search ?budget ?on_checkpoint ?resume ~dedup:`Off ~max_depth:40
      ~inputs:[ 0; 1 ] (config ())
  in
  let witness (r : _ Mc.Explore.result) =
    match r.Mc.Explore.violation with
    | Some v -> Sim.Trace.to_string string_of_int v.Mc.Explore.trace
    | None -> Alcotest.fail "planted bug not found"
  in
  let reference = witness (go ()) in
  let last = ref None in
  let interrupted =
    go ~budget:(Robust.Budget.make ~nodes:3 ())
      ~on_checkpoint:(fun s -> last := Some s)
      ()
  in
  Alcotest.(check bool) "interrupted before the bug" true
    (interrupted.Mc.Explore.violation = None);
  let resume = Option.get !last in
  Alcotest.(check string) "same witness after resume" reference
    (witness (go ~resume ()))

let test_resume_mismatch_refused () =
  let bogus = { Mc.Checkpoint.empty with path = [ (7, 0) ] } in
  match search ~resume:bogus () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resume against a mismatched scenario was accepted"

let suite =
  [
    Alcotest.test_case "codec round-trip" `Quick test_codec_round_trip;
    Alcotest.test_case "codec rejects malformed" `Quick
      test_codec_rejects_malformed;
    Alcotest.test_case "save/load atomic" `Quick test_save_load_atomic;
    Alcotest.test_case "load rejects damaged files" `Quick
      test_load_rejects_damaged_files;
    Alcotest.test_case "scenario stamp verbatim" `Quick
      test_scenario_stamp_verbatim;
    Alcotest.test_case "resume = uninterrupted" `Quick
      test_resume_equals_uninterrupted;
    Alcotest.test_case "resume from periodic checkpoints" `Quick
      test_resume_from_periodic_checkpoints;
    Alcotest.test_case "resume finds the violation" `Quick
      test_resume_finds_the_violation;
    Alcotest.test_case "mismatched resume refused" `Quick
      test_resume_mismatch_refused;
  ]
