(* Instrumentation must not perturb determinism: search_par and fuzz
   campaigns run with a metrics-enabled handle (in-memory sink) under
   jobs 1 and 2 — the results stay bit-identical and the merged engine
   counters (the ["mc/"] and ["fuzz/"] families) are jobs-invariant and
   equal to the result fields they mirror.  The ["par/"] counters
   describe scheduling (chunks per domain, batches) and are jobs-variant
   by nature, so they are filtered out before comparison — the point of
   the per-domain-slot design is precisely that their variance never
   leaks into engine counters. *)

open Consensus

let engine_counters obs =
  List.filter
    (fun (name, _) -> not (String.starts_with ~prefix:"par/" name))
    (Obs.Metrics.counters (Obs.metrics obs))

let counter obs name = Obs.Metrics.counter (Obs.metrics obs) name

(* ---- search_par ---- *)

let project_result (r : _ Mc.Explore.result) =
  ( (match r.violation with
    | None -> None
    | Some v -> Some (Sim.Trace.to_string string_of_int v.trace)),
    r.visited,
    r.leaves,
    r.truncated,
    Robust.Budget.completeness_to_string r.completeness,
    r.max_depth_seen,
    r.table_hits,
    r.table_misses )

let run_search jobs =
  let obs = Obs.create ~sink:(Obs.Sink.memory ()) () in
  let config =
    Protocol.initial_config Cas_consensus.protocol ~inputs:[ 0; 1; 1 ]
  in
  let r =
    Par.with_pool ~jobs ~obs (fun pool ->
        Mc.Explore.search_par ~obs ~pool ~dedup:`Exact ~max_depth:12
          ~inputs:[ 0; 1 ] config)
  in
  (r, obs)

let test_search_par_metrics_jobs_invariant () =
  let r1, obs1 = run_search 1 in
  let r2, obs2 = run_search 2 in
  Alcotest.(check bool) "results bit-identical" true
    (project_result r1 = project_result r2);
  Alcotest.(check (list (pair string int)))
    "engine counters jobs-invariant" (engine_counters obs1)
    (engine_counters obs2);
  Alcotest.(check (list (pair string int)))
    "watermarks jobs-invariant"
    (Obs.Metrics.watermarks (Obs.metrics obs1))
    (Obs.Metrics.watermarks (Obs.metrics obs2));
  (* the counters are the result fields, verbatim *)
  List.iter
    (fun (obs, r) ->
      Alcotest.(check int) "mc/visited = visited" r.Mc.Explore.visited
        (counter obs "mc/visited");
      Alcotest.(check int) "mc/leaves = leaves" r.Mc.Explore.leaves
        (counter obs "mc/leaves");
      Alcotest.(check int) "mc/table-hits = table_hits"
        r.Mc.Explore.table_hits (counter obs "mc/table-hits");
      Alcotest.(check int) "mc/table-misses = table_misses"
        r.Mc.Explore.table_misses (counter obs "mc/table-misses");
      Alcotest.(check int) "mc/max-depth = max_depth_seen"
        r.Mc.Explore.max_depth_seen
        (Obs.Metrics.watermark (Obs.metrics obs) "mc/max-depth"))
    [ (obs1, r1); (obs2, r2) ]

let test_search_par_obs_does_not_change_result () =
  (* the observer effect pin: with and without a handle, same answer *)
  let config () =
    Protocol.initial_config Counter_consensus.protocol ~inputs:[ 0; 1 ]
  in
  let bare =
    project_result (Mc.Explore.search_par ~max_depth:9 ~inputs:[ 0; 1 ] (config ()))
  in
  let obs = Obs.create ~sink:(Obs.Sink.memory ()) () in
  let watched =
    project_result
      (Mc.Explore.search_par ~obs ~max_depth:9 ~inputs:[ 0; 1 ] (config ()))
  in
  Alcotest.(check bool) "observed run = bare run" true (watched = bare)

(* ---- fuzz campaigns ---- *)

let find_scenario name =
  match Fuzz.Scenario.find name with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "scenario %s: %s" name e

let run_campaign jobs =
  let obs = Obs.create ~sink:(Obs.Sink.memory ()) () in
  let r =
    Par.with_pool ~jobs ~obs (fun pool ->
        Fuzz.Campaign.run ~obs ~pool ~shrink:true ~runs:64 ~seed:1
          (find_scenario "flawed"))
  in
  (r, obs)

let test_campaign_metrics_jobs_invariant () =
  let r1, obs1 = run_campaign 1 in
  let r2, obs2 = run_campaign 2 in
  Alcotest.(check bool) "campaigns bit-identical" true (r1 = r2);
  Alcotest.(check (list (pair string int)))
    "engine counters jobs-invariant" (engine_counters obs1)
    (engine_counters obs2);
  Alcotest.(check int) "fuzz/runs = runs_done" r1.Fuzz.Campaign.runs_done
    (counter obs1 "fuzz/runs");
  Alcotest.(check int) "fuzz/violations = violations"
    r1.Fuzz.Campaign.violations
    (counter obs1 "fuzz/violations");
  (* the shrinker counters mirror the recorded shrink stats (a missing
     counter reads 0 — zero-valued counters are omitted from dumps) *)
  match r1.Fuzz.Campaign.first_violation with
  | None -> Alcotest.fail "campaign found no violation"
  | Some cex -> (
      match cex.Fuzz.Campaign.shrink_stats with
      | None -> Alcotest.fail "shrink was on but stats are missing"
      | Some st ->
          Alcotest.(check int) "fuzz/shrink/candidates = stats"
            st.Fuzz.Shrink.candidates
            (counter obs1 "fuzz/shrink/candidates");
          Alcotest.(check int) "fuzz/shrink/accepted = stats"
            st.Fuzz.Shrink.accepted
            (counter obs1 "fuzz/shrink/accepted");
          Alcotest.(check bool) "shrinker exercised" true
            (st.Fuzz.Shrink.candidates > 0))

let suite =
  [
    Alcotest.test_case "search_par metrics jobs-invariant" `Quick
      test_search_par_metrics_jobs_invariant;
    Alcotest.test_case "search_par unperturbed by obs" `Quick
      test_search_par_obs_does_not_change_result;
    Alcotest.test_case "campaign metrics jobs-invariant" `Quick
      test_campaign_metrics_jobs_invariant;
  ]
