open Sim
open Objects

(* three processes, each does one write then decides *)
let one_write_code ~pid : int Proc.t =
  let open Proc in
  let* _ = apply pid (Register.write_int pid) in
  decide pid

let config3 () =
  Config.make
    ~optypes:[ Register.optype (); Register.optype (); Register.optype () ]
    ~procs:[ one_write_code ~pid:0; one_write_code ~pid:1; one_write_code ~pid:2 ]

let test_round_robin_order () =
  let result = Run.exec (Sched.round_robin ()) (config3 ()) in
  let apply_pids =
    List.map (fun (pid, _, _, _) -> pid) (Trace.applied_ops result.Run.trace)
  in
  Alcotest.(check (list int)) "cyclic order" [ 0; 1; 2 ] apply_pids

let test_random_deterministic_by_seed () =
  let r1 = Run.exec (Sched.random ~seed:5) (config3 ()) in
  let r2 = Run.exec (Sched.random ~seed:5) (config3 ()) in
  Alcotest.(check bool) "same trace" true (r1.Run.trace = r2.Run.trace)

let test_replay_schedule () =
  let result =
    Run.exec (Sched.replay ~pids:[ 2; 0; 1 ] ~seed:1) (config3 ())
  in
  let apply_pids =
    List.map (fun (pid, _, _, _) -> pid) (Trace.applied_ops result.Run.trace)
  in
  Alcotest.(check (list int)) "replayed order" [ 2; 0; 1 ] apply_pids

let test_replay_stops () =
  let result = Run.exec (Sched.replay ~pids:[ 0 ] ~seed:1) (config3 ()) in
  Alcotest.(check bool) "stops after list" true
    (result.Run.outcome = Run.Scheduler_stopped);
  Alcotest.(check int) "one step" 1 result.Run.steps

let test_replay_skips_decided () =
  (* scheduling a decided process is skipped, not an error *)
  let result =
    Run.exec (Sched.replay ~pids:[ 0; 0; 0; 1 ] ~seed:1) (config3 ())
  in
  (* P0 has 2 steps (write + implicit decide is same step); after its
     decision further 0s are skipped *)
  let apply_pids =
    List.map (fun (pid, _, _, _) -> pid) (Trace.applied_ops result.Run.trace)
  in
  Alcotest.(check (list int)) "skips decided" [ 0; 1 ] apply_pids

let test_solo_only_runs_pid () =
  let result = Run.exec (Sched.solo ~pid:1 ~seed:1) (config3 ()) in
  Alcotest.(check (list int)) "only P1" [ 1 ] (Trace.pids result.Run.trace)

let test_contention_terminates () =
  let result = Run.exec (Sched.contention ~seed:2) (config3 ()) in
  Alcotest.(check bool) "completes" true (result.Run.outcome = Run.All_decided)

let test_adaptive () =
  (* adversary that always picks the highest enabled pid *)
  let sched =
    Sched.adaptive ~name:"max-pid" ~seed:1 (fun _rng config ~step:_ ->
        match List.rev (Config.enabled_pids config) with
        | pid :: _ -> Some pid
        | [] -> None)
  in
  let result = Run.exec sched (config3 ()) in
  let apply_pids =
    List.map (fun (pid, _, _, _) -> pid) (Trace.applied_ops result.Run.trace)
  in
  Alcotest.(check (list int)) "descending" [ 2; 1; 0 ] apply_pids

let test_starving_defers_victim () =
  (* the victim moves only once everyone else has decided: its write is the
     last Applied event, on every seed *)
  List.iter
    (fun seed ->
      let result = Run.exec (Sched.starving ~victim:1 ~seed) (config3 ()) in
      Alcotest.(check bool)
        (Printf.sprintf "all decided (seed %d)" seed)
        true
        (result.Run.outcome = Run.All_decided);
      let apply_pids =
        List.map (fun (pid, _, _, _) -> pid) (Trace.applied_ops result.Run.trace)
      in
      Alcotest.(check int)
        (Printf.sprintf "victim moves last (seed %d)" seed)
        1
        (List.nth apply_pids (List.length apply_pids - 1));
      Alcotest.(check bool)
        (Printf.sprintf "victim starved before that (seed %d)" seed)
        false
        (List.mem 1 (List.filteri (fun i _ -> i < 2) apply_pids)))
    [ 1; 2; 3; 4; 5 ]

let test_starving_deterministic_by_seed () =
  let r1 = Run.exec (Sched.starving ~victim:0 ~seed:9) (config3 ()) in
  let r2 = Run.exec (Sched.starving ~victim:0 ~seed:9) (config3 ()) in
  Alcotest.(check bool) "same trace" true (r1.Run.trace = r2.Run.trace)

let suite =
  [
    Alcotest.test_case "round robin order" `Quick test_round_robin_order;
    Alcotest.test_case "starving defers victim" `Quick
      test_starving_defers_victim;
    Alcotest.test_case "starving deterministic by seed" `Quick
      test_starving_deterministic_by_seed;
    Alcotest.test_case "random deterministic by seed" `Quick
      test_random_deterministic_by_seed;
    Alcotest.test_case "replay order" `Quick test_replay_schedule;
    Alcotest.test_case "replay stops" `Quick test_replay_stops;
    Alcotest.test_case "replay skips decided" `Quick test_replay_skips_decided;
    Alcotest.test_case "solo only runs pid" `Quick test_solo_only_runs_pid;
    Alcotest.test_case "contention terminates" `Quick test_contention_terminates;
    Alcotest.test_case "adaptive adversary" `Quick test_adaptive;
  ]
