(* Determinism regression suite: every parallelized entry point must
   produce bit-identical results for jobs 1, 2, and 8 — and where the
   contract promises it, identical to the sequential code path.  Outcomes
   are projected to plain data before comparison because configs carry
   closures (structural [=] would raise). *)

open Consensus
open Lowerbound

(* Each check runs once sequentially (pool = None) and once per pool. *)
let pool_jobs = [ 1; 2; 8 ]

let across_pools f =
  let reference = f None in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs %d = sequential" jobs)
            true
            (f (Some pool) = reference)))
    pool_jobs;
  reference

(* ---- Explore.search_par ---- *)

let project_result (r : _ Mc.Explore.result) =
  ( (match r.violation with
    | None -> None
    | Some v ->
        Some
          ( (match v.kind with `Inconsistent -> "inconsistent" | `Invalid -> "invalid"),
            Sim.Trace.to_string string_of_int v.trace )),
    r.visited,
    r.leaves,
    r.truncated,
    Robust.Budget.completeness_to_string r.completeness,
    r.max_depth_seen )

let config_of p inputs = Protocol.initial_config p ~inputs

let test_search_par_pool_independent () =
  let config = config_of Cas_consensus.protocol [ 0; 1; 1 ] in
  ignore
    (across_pools (fun pool ->
         project_result
           (Mc.Explore.search_par ?pool ~max_depth:12 ~inputs:[ 0; 1 ] config)))

let test_search_par_matches_sequential_fields () =
  (* the satellite pin: on violation-free trees the merged result equals
     the sequential [search] in every field, not just the verdict —
     both when exhaustive and when depth-truncated *)
  List.iter
    (fun (name, p, inputs, max_depth) ->
      let seq =
        project_result
          (Mc.Explore.search ~max_depth ~inputs:[ 0; 1 ]
             (config_of p inputs))
      in
      let par =
        project_result
          (Mc.Explore.search_par ~max_depth ~inputs:[ 0; 1 ]
             (config_of p inputs))
      in
      Alcotest.(check bool) (name ^ ": all fields equal") true (par = seq))
    [
      ("cas exhaustive", Cas_consensus.protocol, [ 0; 1 ], 40);
      ("tas2 exhaustive", Tas2.protocol, [ 1; 0 ], 40);
      ("cas truncated", Cas_consensus.protocol, [ 0; 1; 1 ], 6);
      ("fa truncated", Fa_consensus.protocol, [ 0; 1 ], 8);
    ]

let test_search_par_depth_zero_and_violation_witness () =
  (* max_depth = 0: only the root is examined, trivially equal *)
  let config = config_of Cas_consensus.protocol [ 0; 1 ] in
  Alcotest.(check bool)
    "depth 0 equal" true
    (project_result (Mc.Explore.search_par ~max_depth:0 ~inputs:[ 0; 1 ] config)
    = project_result (Mc.Explore.search ~max_depth:0 ~inputs:[ 0; 1 ] config));
  (* a violation: the partitioned search must report the same witness the
     sequential DFS finds, for every pool size *)
  let p = Flawed.first_writer ~r:1 in
  let witness pool =
    match
      (Mc.Explore.search_par ?pool ~max_depth:40 ~inputs:[ 0; 1 ]
         (config_of p [ 0; 1 ]))
        .violation
    with
    | Some v -> Sim.Trace.to_string string_of_int v.trace
    | None -> Alcotest.fail "model checker missed the planted bug"
  in
  let par_witness = across_pools witness in
  let seq_witness =
    match
      (Mc.Explore.search ~max_depth:40 ~inputs:[ 0; 1 ] (config_of p [ 0; 1 ]))
        .violation
    with
    | Some v -> Sim.Trace.to_string string_of_int v.trace
    | None -> Alcotest.fail "sequential search missed the planted bug"
  in
  Alcotest.(check string) "same witness as sequential" seq_witness par_witness

let test_search_par_node_budget_equals_sequential () =
  (* the tentpole pin: a node budget is deterministic under any job count
     AND equal to the sequential governed search in every field,
     completeness verdict included — the speculative validation fold must
     reproduce the sequential frontier exactly.  Allowances straddle the
     interesting boundaries: the k<=1 fallback, mid-subtree trips, a trip
     on the last node, and a budget beyond the tree (exhaustive). *)
  let config () = config_of Counter_consensus.protocol [ 0; 1 ] in
  List.iter
    (fun nodes ->
      let budget () = Robust.Budget.make ~nodes () in
      let seq =
        project_result
          (Mc.Explore.search ~budget:(budget ()) ~max_depth:9 ~inputs:[ 0; 1 ]
             (config ()))
      in
      let par =
        across_pools (fun pool ->
            project_result
              (Mc.Explore.search_par ?pool ~budget:(budget ()) ~max_depth:9
                 ~inputs:[ 0; 1 ] (config ())))
      in
      Alcotest.(check bool)
        (Printf.sprintf "nodes=%d: par = seq, all fields" nodes)
        true (par = seq))
    [ 1; 2; 3; 10; 1_000; 10_000; 100_000_000 ]

(* ---- Explore.search_par with dedup ---- *)

let test_search_par_dedup_pool_independent () =
  (* each subtree task owns a private transposition table, so the merged
     result is bit-identical for jobs 1, 2, 8 and pool = None *)
  let config = config_of Cas_consensus.protocol [ 0; 1; 1 ] in
  List.iter
    (fun dedup ->
      ignore
        (across_pools (fun pool ->
             project_result
               (Mc.Explore.search_par ?pool ~dedup ~max_depth:12
                  ~inputs:[ 0; 1 ] config))))
    [ `Exact; `Symmetric ]

let test_search_par_dedup_witness_parity () =
  (* dedup never changes the reported witness, pooled or not *)
  let p = Flawed.first_writer ~r:1 in
  let config () = config_of p [ 0; 1 ] in
  let witness (r : int Mc.Explore.result) =
    match r.violation with
    | Some v -> Sim.Trace.to_string string_of_int v.trace
    | None -> Alcotest.fail "model checker missed the planted bug"
  in
  let reference =
    witness (Mc.Explore.search ~max_depth:40 ~inputs:[ 0; 1 ] (config ()))
  in
  List.iter
    (fun dedup ->
      let w =
        across_pools (fun pool ->
            witness
              (Mc.Explore.search_par ?pool ~dedup ~max_depth:40
                 ~inputs:[ 0; 1 ] (config ())))
      in
      Alcotest.(check string) "same witness under dedup" reference w)
    [ `Exact; `Symmetric ]

(* ---- Attack sweeps ---- *)

let project_attack = function
  | Ok (o : Attack.outcome) ->
      Ok
        ( Attack.succeeded o,
          o.processes_used,
          o.registers,
          o.nominal_n,
          Sim.Trace.to_string string_of_int o.trace )
  | Error e -> Error (Attack.error_to_string e)

let test_attack_seed_sweep_deterministic () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:2 in
  let seeds = List.init 12 (fun i -> i + 1) in
  ignore
    (across_pools (fun pool ->
         List.map
           (fun (s, r) -> (s, project_attack r))
           (Attack.seed_sweep ?pool ~seeds p)))

let test_attack_protocol_sweep_deterministic () =
  let ps =
    [
      Flawed.unanimous ~style:Flawed.Rw ~r:1;
      Flawed.unanimous ~style:Flawed.Swapping ~r:2;
      Flawed.first_writer ~r:1;
      Flawed.mixed ~r:2;
    ]
  in
  ignore
    (across_pools (fun pool ->
         List.map (fun (n, r) -> (n, project_attack r)) (Attack.sweep ?pool ps)))

let project_general = function
  | Ok (o : General_attack.outcome) ->
      Ok
        ( General_attack.succeeded o,
          o.processes_used,
          o.registers,
          o.pieces_alpha,
          o.pieces_beta )
  | Error e -> Error (General_attack.error_to_string e)

let test_general_attack_sweep_deterministic () =
  let ps =
    [
      Flawed.unanimous ~style:Flawed.Rw ~r:1;
      Flawed.unanimous ~style:Flawed.Swapping ~r:2;
    ]
  in
  ignore
    (across_pools (fun pool ->
         List.map
           (fun (n, r) -> (n, project_general r))
           (General_attack.sweep ?pool ps)))

let test_minimum_processes_deterministic () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:1 in
  let n =
    across_pools (fun pool ->
        General_attack.minimum_processes ?pool ~limit:60 p)
  in
  Alcotest.(check bool) "found a minimum" true (n <> None)

(* ---- Experiment tables ---- *)

let test_experiment_tables_deterministic () =
  List.iter
    (fun (name, table) ->
      let rendered = across_pools (fun pool -> table pool) in
      Alcotest.(check bool)
        (name ^ " non-empty") true
        (String.length rendered > 0))
    [
      ( "e2",
        fun pool ->
          Stats.Table.render (Experiments.E2_identical_lb.table ?pool ~max_r:2 ()) );
      ( "e3",
        fun pool ->
          Stats.Table.render (Experiments.E3_general_lb.table ?pool ~max_r:1 ()) );
      ( "e4",
        fun pool ->
          Stats.Table.render (Experiments.E4_space.table ?pool ~ns:[ 2; 3 ] ()) );
      ( "e14",
        fun pool ->
          Stats.Table.render
            (Experiments.E14_ablation.table ?pool ~ns:[ 2 ] ~reps:8 ()) );
    ]

let suite =
  [
    Alcotest.test_case "search_par pool-independent" `Quick
      test_search_par_pool_independent;
    Alcotest.test_case "search_par = search, all fields" `Quick
      test_search_par_matches_sequential_fields;
    Alcotest.test_case "search_par depth-0 and witness parity" `Quick
      test_search_par_depth_zero_and_violation_witness;
    Alcotest.test_case "search_par node budget = sequential" `Quick
      test_search_par_node_budget_equals_sequential;
    Alcotest.test_case "search_par dedup pool-independent" `Quick
      test_search_par_dedup_pool_independent;
    Alcotest.test_case "search_par dedup witness parity" `Quick
      test_search_par_dedup_witness_parity;
    Alcotest.test_case "attack seed sweep" `Quick
      test_attack_seed_sweep_deterministic;
    Alcotest.test_case "attack protocol sweep" `Quick
      test_attack_protocol_sweep_deterministic;
    Alcotest.test_case "general attack sweep" `Quick
      test_general_attack_sweep_deterministic;
    Alcotest.test_case "minimum_processes" `Quick
      test_minimum_processes_deterministic;
    Alcotest.test_case "experiment tables (e2/e3/e4/e14)" `Quick
      test_experiment_tables_deterministic;
  ]
