(* The linearizability checker on hand-crafted histories. *)

open Sim
open Objimpl

let reg_spec = Objects.Register.finite ~values:[ Value.int 0; Value.int 1; Value.int 2 ] ()

let inv call pid op = History.Inv { call; pid; op }
let res call pid value = History.Res { call; pid; value }

let write v = Objects.Register.write (Value.int v)
let read = Objects.Register.read

(* sequential: write 1, read 1 *)
let test_sequential_ok () =
  let h =
    [
      inv 0 0 (write 1);
      res 0 0 Value.unit;
      inv 1 1 read;
      res 1 1 (Value.int 1);
    ]
  in
  Alcotest.(check bool) "linearizable" true (Linearize.is_linearizable reg_spec h)

(* read overlapping a write may return old or new value *)
let test_overlap_both_ok () =
  List.iter
    (fun v ->
      let h =
        [
          inv 0 0 (write 1);
          inv 1 1 read;
          res 1 1 (Value.int v);
          res 0 0 Value.unit;
        ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "overlapping read=%d" v)
        true
        (Linearize.is_linearizable reg_spec h))
    [ 0; 1 ]

(* stale read after the write completed: not linearizable *)
let test_stale_read () =
  let h =
    [
      inv 0 0 (write 1);
      res 0 0 Value.unit;
      inv 1 1 read;
      res 1 1 (Value.int 0);
    ]
  in
  match Linearize.check reg_spec h with
  | Linearize.Not_linearizable -> ()
  | Linearize.Linearizable _ -> Alcotest.fail "accepted a stale read"
  | Linearize.Unknown | Linearize.Malformed _ ->
      Alcotest.fail "budget/malformed on a 2-call history?"

(* new-old inversion between two reads: not linearizable *)
let test_new_old_inversion () =
  let h =
    [
      inv 0 0 (write 1);
      inv 1 1 read;
      res 1 1 (Value.int 1);
      inv 2 1 read;
      res 2 1 (Value.int 0);
      res 0 0 Value.unit;
    ]
  in
  match Linearize.check reg_spec h with
  | Linearize.Not_linearizable -> ()
  | _ -> Alcotest.fail "accepted a new-old inversion"

(* incomplete calls are ignored *)
let test_incomplete_ignored () =
  let h = [ inv 0 0 (write 1); inv 1 1 read; res 1 1 (Value.int 0) ] in
  Alcotest.(check bool) "pending write not forced" true
    (Linearize.is_linearizable reg_spec h)

(* the witness order is a legal linearization: responses replay *)
let test_witness_order () =
  let h =
    [
      inv 0 0 (write 2);
      inv 1 1 read;
      res 0 0 Value.unit;
      res 1 1 (Value.int 2);
      inv 2 0 read;
      res 2 0 (Value.int 2);
    ]
  in
  match Linearize.check reg_spec h with
  | Linearize.Linearizable order ->
      Alcotest.(check int) "all calls in witness" 3 (List.length order);
      let final =
        List.fold_left
          (fun state (c : History.call) ->
            let state', resp = Optype.apply reg_spec state c.History.op in
            (match c.History.response with
            | Some r ->
                Alcotest.(check bool) "response replays" true (Value.equal r resp)
            | None -> ());
            state')
          reg_spec.Optype.init order
      in
      Alcotest.(check bool) "final state" true (Value.equal final (Value.int 2))
  | _ -> Alcotest.fail "expected linearizable"

let test_history_calls () =
  let h =
    [ inv 0 0 read; inv 1 1 read; res 1 1 (Value.int 0); res 0 0 (Value.int 0) ]
  in
  let calls = History.calls h in
  Alcotest.(check int) "two calls" 2 (List.length calls);
  Alcotest.(check bool) "complete" true (History.is_complete h);
  match calls with
  | [ a; b ] ->
      Alcotest.(check bool) "no precedence when overlapping" false
        (History.precedes a b || History.precedes b a)
  | _ -> Alcotest.fail "calls"

let test_precedes () =
  let h =
    [ inv 0 0 read; res 0 0 (Value.int 0); inv 1 1 read; res 1 1 (Value.int 0) ]
  in
  match History.calls h with
  | [ a; b ] ->
      Alcotest.(check bool) "a precedes b" true (History.precedes a b);
      Alcotest.(check bool) "b not precedes a" false (History.precedes b a)
  | _ -> Alcotest.fail "calls"

let suite =
  [
    Alcotest.test_case "sequential ok" `Quick test_sequential_ok;
    Alcotest.test_case "overlapping read both values" `Quick test_overlap_both_ok;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read;
    Alcotest.test_case "new-old inversion rejected" `Quick test_new_old_inversion;
    Alcotest.test_case "incomplete calls ignored" `Quick test_incomplete_ignored;
    Alcotest.test_case "witness order replays" `Quick test_witness_order;
    Alcotest.test_case "history calls" `Quick test_history_calls;
    Alcotest.test_case "precedes" `Quick test_precedes;
  ]
