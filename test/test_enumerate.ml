(* Exhaustive bounded-protocol impossibility, and the model-checker
   regression it uncovered (initial decisions must be checked). *)

open Sim
open Mc

let test_tree_counts () =
  Alcotest.(check int) "depth 0" 2 (List.length (Enumerate.enumerate 0));
  Alcotest.(check int) "depth 1" 14 (List.length (Enumerate.enumerate 1));
  Alcotest.(check int) "depth 2" 2774 (List.length (Enumerate.enumerate 2))

let test_tree_semantics () =
  let open Enumerate in
  Alcotest.(check int) "decide" 0 (solo_decision (Decide 0));
  Alcotest.(check int) "write then decide" 1 (solo_decision (Write (0, Decide 1)));
  (* read from the empty register takes the empty branch *)
  Alcotest.(check int) "read empty branch" 0
    (solo_decision (Read (Decide 0, Decide 1, Decide 1)));
  Alcotest.(check int) "write then read own" 1
    (solo_decision (Write (1, Read (Decide 0, Decide 0, Decide 1))))

let test_census_depth1_impossible () =
  let c = Enumerate.census ~depth:1 in
  Alcotest.(check int) "no correct protocol" 0 c.Enumerate.correct;
  Alcotest.(check bool) "no example" true (c.Enumerate.example_correct = None);
  Alcotest.(check int) "pairs checked" 49 c.Enumerate.candidate_pairs

let test_census_depth0 () =
  let c = Enumerate.census ~depth:0 in
  Alcotest.(check int) "one candidate pair (D0, D1)" 1 c.Enumerate.candidate_pairs;
  Alcotest.(check int) "and it is inconsistent" 0 c.Enumerate.correct

let test_census_randomized_depth1 () =
  let c = Enumerate.census_randomized ~depth:1 in
  Alcotest.(check int) "18 trees with coins" 18 c.Enumerate.trees;
  Alcotest.(check int) "coins do not help" 0 c.Enumerate.correct

let test_flip_semantics () =
  let open Enumerate in
  (* a flipping tree reaches both outcomes solo *)
  Alcotest.(check (list int)) "both reachable" [ 0; 1 ]
    (solo_decisions (Flip (Decide 0, Decide 1)));
  (* and is therefore rejected by the validity filter *)
  match solo_decision (Flip (Decide 0, Decide 1)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of a two-outcome tree"

(* the regression: a protocol where both processes decide instantly with
   different values has an inconsistent execution of zero steps — the
   checker must see it *)
let test_mc_initial_decisions () =
  let config =
    Config.make
      ~optypes:[ Objects.Register.optype () ]
      ~procs:[ Proc.decide 0; Proc.decide 1 ]
  in
  match (Explore.search ~inputs:[ 0; 1 ] config).Explore.violation with
  | Some { kind = `Inconsistent; _ } -> ()
  | _ -> Alcotest.fail "missed the zero-step inconsistency"

let test_mc_initial_invalid () =
  let config =
    Config.make ~optypes:[] ~procs:[ Proc.decide 7 ]
  in
  match (Explore.search ~inputs:[ 0 ] config).Explore.violation with
  | Some { kind = `Invalid; _ } -> ()
  | _ -> Alcotest.fail "missed the zero-step validity violation"

(* sanity: a known-broken depth-1 pair is caught by check_inputs *)
let test_check_inputs_catches () =
  let open Enumerate in
  let t0 = Read (Decide 0, Decide 0, Decide 1) in
  let t1 = Read (Decide 1, Decide 0, Decide 1) in
  (* both read the empty register concurrently and decide their inputs *)
  Alcotest.(check bool) "mixed inputs refuted" false (check_inputs t0 t1 [ 0; 1 ])

(* solo_decisions is contractually duplicate-free and sorted: census
   filters and the synth lemma pool compare the list structurally
   against [0]/[1], so a tree reaching the same decision along several
   coin paths must not report it twice *)
let test_solo_decisions_dedup () =
  let open Enumerate in
  Alcotest.(check (list int)) "flip to the same decision" [ 0 ]
    (solo_decisions (Flip (Decide 0, Decide 0)));
  Alcotest.(check (list int)) "nested flips, two paths each" [ 0; 1 ]
    (solo_decisions
       (Flip (Flip (Decide 1, Decide 0), Flip (Decide 0, Decide 1))));
  Alcotest.(check (list int)) "sorted regardless of branch order" [ 0; 1 ]
    (solo_decisions (Flip (Decide 1, Decide 0)))

(* ---- generalized trees (the synth search space) ---- *)

module D = Consensus.Dtree

(* at one rw register the generalized enumeration is the legacy one:
   same counts at every depth, and the census goldens carry over *)
let test_dtree_counts_match_legacy () =
  List.iter
    (fun (depth, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "rw r=1 depth %d" depth)
        expect
        (List.length
           (Enumerate.enumerate_dtrees ~style:D.Rw ~registers:1 ~coins:false
              depth)))
    [ (0, 2); (1, 14); (2, 2774) ];
  Alcotest.(check int) "rw r=1 depth 1 with coins" 18
    (List.length
       (Enumerate.enumerate_dtrees ~style:D.Rw ~registers:1 ~coins:true 1));
  (* swap style at depth 1: 2 decides + 2x8 one-swap trees + 8 reads *)
  Alcotest.(check int) "swap r=1 depth 1" 26
    (List.length
       (Enumerate.enumerate_dtrees ~style:D.Swapping ~registers:1
          ~coins:false 1))

let test_dtree_embedding_agrees () =
  let open Enumerate in
  List.iter
    (fun tree ->
      let d = dtree_of_tree tree in
      Alcotest.(check (list int))
        (D.to_string d ^ " solo decisions agree")
        (solo_decisions tree)
        (dtree_solo_decisions ~style:D.Rw ~registers:1 d))
    (enumerate_randomized 1);
  (* a violating legacy pair is violating through the dtree checker too *)
  let t0 = Read (Decide 0, Decide 0, Decide 1) in
  let t1 = Read (Decide 1, Decide 0, Decide 1) in
  match
    dtree_check_verdict ~style:D.Rw ~registers:1
      (dtree_of_tree t0, dtree_of_tree t1)
      [ 0; 1 ]
  with
  | `Violating _ -> ()
  | `Correct -> Alcotest.fail "dtree checker missed the race"
  | `Unknown _ -> Alcotest.fail "dtree check truncated"

let suite =
  [
    Alcotest.test_case "tree counts" `Quick test_tree_counts;
    Alcotest.test_case "solo_decisions dedup + sort" `Quick
      test_solo_decisions_dedup;
    Alcotest.test_case "dtree counts match legacy" `Quick
      test_dtree_counts_match_legacy;
    Alcotest.test_case "dtree embedding agrees" `Quick
      test_dtree_embedding_agrees;
    Alcotest.test_case "tree semantics" `Quick test_tree_semantics;
    Alcotest.test_case "depth-1 census: impossible" `Quick test_census_depth1_impossible;
    Alcotest.test_case "depth-0 census" `Quick test_census_depth0;
    Alcotest.test_case "randomized census depth 1" `Quick test_census_randomized_depth1;
    Alcotest.test_case "flip semantics" `Quick test_flip_semantics;
    Alcotest.test_case "MC checks initial decisions" `Quick test_mc_initial_decisions;
    Alcotest.test_case "MC checks initial validity" `Quick test_mc_initial_invalid;
    Alcotest.test_case "check_inputs catches races" `Quick test_check_inputs_catches;
  ]
