(* The CEGIS synthesis loop: frontier goldens for both object styles,
   the soundness property that makes lemma pruning admissible (identical
   verdicts with the pool disabled), provenance of every pooled lemma,
   and the registry/codec round-trip of synthesized protocols. *)

module D = Consensus.Dtree
module Cegis = Synth.Cegis
module Lemma = Synth.Lemma

let search ?prune ?(procs = 4) ~style ~depth () =
  Cegis.search ?prune ~style ~registers:1 ~depth ~coins:false
    ~max_procs:procs ~seed:1 ()

let verdict_str (row : Cegis.row) = Cegis.verdict_to_string row.Cegis.verdict

(* rw registers, depth 1: consensus is impossible already at n = 2, and
   the loop proves it exhaustively over exactly the census's 49 pairs *)
let test_rw_depth1_frontier () =
  let r = search ~style:D.Rw ~depth:1 () in
  Alcotest.(check int) "trees" 14 r.Cegis.trees;
  Alcotest.(check int) "solo-valid 0 side" 7 r.Cegis.valid0;
  Alcotest.(check int) "solo-valid 1 side" 7 r.Cegis.valid1;
  Alcotest.(check int) "frontier" 1 r.Cegis.frontier;
  Alcotest.(check string) "exhaustive" "exhaustive"
    (Robust.Budget.completeness_to_string r.Cegis.completeness);
  match r.Cegis.rows with
  | [ row ] ->
      Alcotest.(check int) "one round stops at n=2" 2 row.Cegis.n;
      Alcotest.(check string) "unsatisfiable" "unsatisfiable" (verdict_str row);
      Alcotest.(check int) "all 49 pairs examined" 49 row.Cegis.candidates;
      Alcotest.(check int) "every pair rejected" 49
        (row.Cegis.pruned + row.Cegis.refuted);
      Alcotest.(check bool) "no witness" true (row.Cegis.witness = None)
  | rows -> Alcotest.failf "expected exactly one row, got %d" (List.length rows)

(* swap registers, depth 1: the one-swap adopt-the-first protocol solves
   n = 2 (consensus number 2, Ovens 2023) and nothing in the class
   survives n = 3 — the frontier the synthesizer must rediscover *)
let test_swap_depth1_frontier () =
  let r = search ~style:D.Swapping ~depth:1 ~procs:5 () in
  Alcotest.(check int) "frontier" 2 r.Cegis.frontier;
  Alcotest.(check string) "exhaustive" "exhaustive"
    (Robust.Budget.completeness_to_string r.Cegis.completeness);
  (match r.Cegis.rows with
  | [ row2; row3 ] ->
      Alcotest.(check string) "n=2 satisfiable" "satisfiable"
        (verdict_str row2);
      Alcotest.(check string) "n=3 unsatisfiable" "unsatisfiable"
        (verdict_str row3);
      Alcotest.(check bool) "n=2 witness present" true
        (row2.Cegis.witness <> None)
  | rows ->
      Alcotest.failf "expected rows for n=2 and n=3, got %d"
        (List.length rows));
  (* the witness really is a correct 2-process protocol: its mixed
     vector verifies exhaustively through the independent checker *)
  let row2 = List.hd r.Cegis.rows in
  let t0, t1 = Option.get row2.Cegis.witness in
  (match
     Mc.Enumerate.dtree_check_verdict ~style:D.Swapping ~registers:1 (t0, t1)
       [ 0; 1 ]
   with
  | `Correct -> ()
  | `Violating _ -> Alcotest.fail "witness violates on inputs 0,1"
  | `Unknown _ -> Alcotest.fail "witness check truncated");
  (* and violates at n = 3, consistently with the unsatisfiable row *)
  match
    Mc.Enumerate.dtree_check_verdict ~style:D.Swapping ~registers:1 (t0, t1)
      [ 0; 1; 1 ]
  with
  | `Violating _ -> ()
  | `Correct -> Alcotest.fail "witness should fail at n=3"
  | `Unknown _ -> Alcotest.fail "witness n=3 check truncated"

(* the synthesized name is a live registry entry: find resolves it, the
   protocol round-trips through its own name, and mc can check it *)
let test_registry_round_trip () =
  let r = search ~style:D.Swapping ~depth:1 ~procs:3 () in
  let row2 = List.hd r.Cegis.rows in
  let name = Option.get (Cegis.witness_name r row2) in
  match Consensus.Registry.find name with
  | None -> Alcotest.failf "registry cannot resolve %s" name
  | Some p ->
      Alcotest.(check string) "name round-trips" name
        p.Consensus.Protocol.name;
      Alcotest.(check bool) "identical processes" true
        p.Consensus.Protocol.identical;
      (* checked end-to-end by the generic model checker, like any
         packaged protocol *)
      let config = Consensus.Protocol.initial_config p ~inputs:[ 0; 1 ] in
      let result = Mc.Explore.search ~inputs:[ 0; 1 ] config in
      Alcotest.(check bool) "mc finds no violation" true
        (result.Mc.Explore.violation = None);
      let bad = Consensus.Protocol.initial_config p ~inputs:[ 0; 1; 1 ] in
      let result = Mc.Explore.search ~inputs:[ 0; 1; 1 ] bad in
      Alcotest.(check bool) "mc violates at n=3" true
        (result.Mc.Explore.violation <> None)

(* every pooled lemma must hit its own source: the pool only ever holds
   replayable counterexamples, which is the whole soundness argument *)
let test_lemma_provenance () =
  List.iter
    (fun (style, procs) ->
      let r = search ~style ~depth:1 ~procs () in
      Alcotest.(check bool) "pool is non-empty" true (r.Cegis.lemmas <> []);
      List.iter
        (fun (l : Lemma.t) ->
          match Consensus.Registry.find l.Lemma.source with
          | None -> Alcotest.failf "lemma source %s unresolvable" l.Lemma.source
          | Some p ->
              Alcotest.(check bool)
                (Printf.sprintf "lemma from %s hits its source"
                   l.Lemma.source)
                true (Lemma.hits l p))
        r.Cegis.lemmas)
    [ (D.Rw, 4); (D.Swapping, 5) ]

(* pruning is an optimization, not an oracle: with the pool disabled
   every row must reach the same verdict, witness and frontier (pruned
   candidates are simply paid for as refutations instead) *)
let test_prune_soundness () =
  List.iter
    (fun style ->
      let project (r : Cegis.result) =
        ( r.Cegis.frontier,
          Robust.Budget.completeness_to_string r.Cegis.completeness,
          List.map
            (fun (row : Cegis.row) ->
              ( row.Cegis.n,
                verdict_str row,
                row.Cegis.candidates,
                Option.map D.to_string (Option.map fst row.Cegis.witness),
                Option.map D.to_string (Option.map snd row.Cegis.witness) ))
            r.Cegis.rows )
      in
      let pruned = project (search ~style ~depth:1 ~procs:4 ()) in
      let unpruned = project (search ~prune:false ~style ~depth:1 ~procs:4 ()) in
      Alcotest.(check bool)
        "same rows, verdicts and witnesses without the pool" true
        (pruned = unpruned);
      let _, _, rows = pruned in
      List.iter
        (fun (n, _, _, _, _) -> Alcotest.(check bool) "n >= 2" true (n >= 2))
        rows)
    [ D.Rw; D.Swapping ]

(* the lemma text codec round-trips the pool the search actually built *)
let test_lemma_codec_round_trip () =
  let r = search ~style:D.Swapping ~depth:1 ~procs:5 () in
  let text = Lemma.to_text r.Cegis.lemmas in
  let back = Lemma.of_text text in
  Alcotest.(check int) "pool size survives" (List.length r.Cegis.lemmas)
    (List.length back);
  Alcotest.(check bool) "pool round-trips structurally" true
    (back = r.Cegis.lemmas);
  Alcotest.(check string) "re-encoding is byte-identical" text
    (Lemma.to_text back)

(* a node budget yields an unknown row and a truncated completeness —
   never a silently under-approximated unsatisfiable *)
let test_budget_trips_loudly () =
  let budget = Robust.Budget.make ~nodes:3 () in
  let r =
    Cegis.search ~budget ~style:D.Rw ~registers:1 ~depth:1 ~coins:false
      ~max_procs:4 ~seed:1 ()
  in
  Alcotest.(check int) "frontier stays at the verified floor" 1
    r.Cegis.frontier;
  (match r.Cegis.completeness with
  | `Truncated `Nodes -> ()
  | c ->
      Alcotest.failf "expected truncated (nodes), got %s"
        (Robust.Budget.completeness_to_string c));
  match r.Cegis.rows with
  | [ row ] -> (
      match row.Cegis.verdict with
      | `Unknown `Nodes -> ()
      | v -> Alcotest.failf "expected unknown:nodes row, got %s"
               (Cegis.verdict_to_string v))
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let suite =
  [
    Alcotest.test_case "rw depth-1 frontier: impossible at n=2" `Quick
      test_rw_depth1_frontier;
    Alcotest.test_case "swap depth-1 frontier: n=2" `Quick
      test_swap_depth1_frontier;
    Alcotest.test_case "synthesized protocol registry round-trip" `Quick
      test_registry_round_trip;
    Alcotest.test_case "every pooled lemma hits its source" `Quick
      test_lemma_provenance;
    Alcotest.test_case "pruning never changes verdicts" `Quick
      test_prune_soundness;
    Alcotest.test_case "lemma codec round-trip" `Quick
      test_lemma_codec_round_trip;
    Alcotest.test_case "budget trips loudly" `Quick test_budget_trips_loudly;
  ]
