open Sim

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 13 in
    if x < 0 || x >= 13 then Alcotest.failf "out of range: %d" x
  done

let test_uniformity () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let reps = 100_000 in
  for _ = 1 to reps do
    let x = Rng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = reps / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d count %d far from %d" i c expected)
    buckets

let test_bool_balance () =
  let rng = Rng.create 3 in
  let trues = ref 0 in
  let reps = 50_000 in
  for _ = 1 to reps do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int reps in
  if ratio < 0.47 || ratio > 0.53 then
    Alcotest.failf "bool ratio %.3f not near 0.5" ratio

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle rng arr;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list arr) = Array.to_list orig);
  Alcotest.(check bool) "actually shuffled" true (arr <> orig)

let test_split_independent () =
  let rng = Rng.create 17 in
  let a = Rng.split rng and b = Rng.split rng in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_golden_stream () =
  (* pinned SplitMix64 outputs: any change to the generator breaks every
     recorded experiment seed, so it must be deliberate *)
  let rng = Rng.create 42 in
  Alcotest.(check (list int))
    "seed 42 stream"
    [ 637706; 446145; 381929; 127882; 981625; 494531; 812462; 887954 ]
    (List.init 8 (fun _ -> Rng.int rng 1_000_000))

let draws rng k = List.init k (fun _ -> Rng.int rng 1_000_000)

let test_split_after_draw_matches_reference () =
  (* a split consumes exactly one parent draw, so the child derived after
     k draws depends only on the seed and k — the interleaving of child
     consumption with later parent activity is irrelevant *)
  let reference =
    let r = Rng.create 99 in
    ignore (draws r 5);
    let child = Rng.split r in
    draws child 10
  in
  (* same construction, but the parent keeps drawing and splitting before
     the child is ever consumed *)
  let interleaved =
    let r = Rng.create 99 in
    ignore (draws r 5);
    let child = Rng.split r in
    ignore (draws r 7);
    ignore (Rng.split r);
    draws child 10
  in
  Alcotest.(check (list int)) "child stream fixed at split" reference interleaved

let test_split_child_does_not_disturb_parent () =
  let a = Rng.create 123 and b = Rng.create 123 in
  let child_a = Rng.split a and child_b = Rng.split b in
  ignore (draws child_a 50);
  (* consuming child_a heavily must leave parent a in lock-step with b *)
  Alcotest.(check (list int)) "parents in lock-step" (draws b 10) (draws a 10);
  ignore child_b

let test_split_n_matches_sequential_splits () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let children = Rng.split_n a 6 in
  let manual = Array.init 6 (fun _ -> Rng.split b) in
  Array.iteri
    (fun i c ->
      Alcotest.(check (list int))
        (Printf.sprintf "child %d stream" i)
        (draws manual.(i) 5) (draws c 5))
    children;
  (* both parents advanced by exactly 6 draws: next values agree *)
  Alcotest.(check (list int)) "parent state equal" (draws b 5) (draws a 5)

let test_split_n_edge_cases () =
  let r = Rng.create 1 in
  Alcotest.(check int) "zero children" 0 (Array.length (Rng.split_n r 0));
  (match Rng.split_n r (-1) with
  | _ -> Alcotest.fail "negative count must be rejected"
  | exception Invalid_argument _ -> ());
  let children = Rng.split_n (Rng.create 5) 8 in
  let streams = Array.to_list (Array.map (fun c -> draws c 5) children) in
  Alcotest.(check int)
    "pairwise distinct child streams" 8
    (List.length (List.sort_uniq compare streams))

let test_copy_is_independent () =
  let a = Rng.create 31 in
  ignore (draws a 3);
  let b = Rng.copy a in
  Alcotest.(check (list int)) "copy replays" (draws a 10) (draws b 10)

let suite =
  [
    Alcotest.test_case "deterministic by seed" `Quick test_deterministic;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "int range" `Quick test_range;
    Alcotest.test_case "uniformity" `Quick test_uniformity;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "golden stream (seed 42)" `Quick test_golden_stream;
    Alcotest.test_case "split-after-draw reference" `Quick
      test_split_after_draw_matches_reference;
    Alcotest.test_case "child does not disturb parent" `Quick
      test_split_child_does_not_disturb_parent;
    Alcotest.test_case "split_n = sequential splits" `Quick
      test_split_n_matches_sequential_splits;
    Alcotest.test_case "split_n edge cases" `Quick test_split_n_edge_cases;
    Alcotest.test_case "copy independent" `Quick test_copy_is_independent;
  ]
