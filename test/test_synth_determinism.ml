(* Jobs-invariance of the CEGIS driver: the same parameters must produce
   bit-identical results — rows, witness trees, and the lemma pool down
   to its text-codec bytes — sequentially and at any pool size.  Runs in
   the standalone determinism executable (RANDSYNC_JOBS=2 in CI). *)

module D = Consensus.Dtree
module Cegis = Synth.Cegis
module Lemma = Synth.Lemma

let pool_jobs = [ 1; 2; 8 ]

(* result projected to plain data (trees and rows are already closure
   free, but a stable string projection gives readable diffs) *)
let project (r : Cegis.result) =
  ( r.Cegis.frontier,
    Robust.Budget.completeness_to_string r.Cegis.completeness,
    r.Cegis.lemma_hits,
    List.map
      (fun (row : Cegis.row) ->
        ( row.Cegis.n,
          row.Cegis.unanimous0,
          row.Cegis.unanimous1,
          row.Cegis.candidates,
          row.Cegis.pruned,
          row.Cegis.refuted,
          Cegis.verdict_to_string row.Cegis.verdict,
          Option.map
            (fun (t0, t1) -> (D.to_string t0, D.to_string t1))
            row.Cegis.witness ))
      r.Cegis.rows,
    Lemma.to_text r.Cegis.lemmas )

let search ?pool ~style ~procs () =
  Cegis.search ?pool ~style ~registers:1 ~depth:1 ~coins:false
    ~max_procs:procs ~seed:11 ()

let across_pools ~style ~procs =
  let reference = project (search ~style ~procs ()) in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          let got = project (search ~pool ~style ~procs ()) in
          Alcotest.(check bool)
            (Printf.sprintf "jobs %d = sequential" jobs)
            true (got = reference)))
    pool_jobs;
  reference

let test_rw_jobs_invariant () =
  let _, completeness, _, _, _ = across_pools ~style:D.Rw ~procs:4 in
  Alcotest.(check string) "exhaustive" "exhaustive" completeness

let test_swap_jobs_invariant () =
  let frontier, _, _, _, lemma_text = across_pools ~style:D.Swapping ~procs:5 in
  Alcotest.(check int) "frontier" 2 frontier;
  (* the pool text is the CI artifact: re-parse to keep the bytes honest *)
  Alcotest.(check string) "lemma text re-encodes identically" lemma_text
    (Lemma.to_text (Lemma.of_text lemma_text))

(* a deterministic node budget must trip on the same candidate at every
   pool size — the Campaign-style batched-admission pin *)
let test_budget_jobs_invariant () =
  let run pool =
    project
      (Cegis.search ?pool
         ~budget:(Robust.Budget.make ~nodes:40 ())
         ~style:D.Rw ~registers:1 ~depth:1 ~coins:false ~max_procs:4 ~seed:11
         ())
  in
  let reference = run None in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "budgeted jobs %d = sequential" jobs)
            true
            (run (Some pool) = reference)))
    pool_jobs

let suite =
  [
    Alcotest.test_case "rw search jobs-invariant" `Quick
      test_rw_jobs_invariant;
    Alcotest.test_case "swap search jobs-invariant" `Quick
      test_swap_jobs_invariant;
    Alcotest.test_case "node budget jobs-invariant" `Quick
      test_budget_jobs_invariant;
  ]
