(* Object implementations end to end: the harness records histories, the
   checker judges them; correct implementations always pass, the flawed
   collect counter is refuted by a directed schedule, and the snapshot
   reader demonstrates solo-termination-without-wait-freedom. *)

open Sim
open Objects
open Objimpl

let counter_ops = [ Counter.inc; Counter.dec; Counter.read ]

let test_collect_counter_inc_only_linearizable () =
  (* increments-only: sums collected register by register are always
     explainable (counts move by +1) *)
  for seed = 1 to 20 do
    let workload =
      Harness.random_workload ~n:3 ~calls:4 ~ops:[ Counter.inc; Counter.read ]
        ~seed
    in
    let outcome, verdict =
      Harness.run_and_check Counters.collect ~n:3 ~workload
        ~schedule:(Harness.Random_sched seed) ()
    in
    Alcotest.(check bool) "completed" true outcome.Harness.completed;
    match verdict with
    | Linearize.Linearizable _ -> ()
    | Linearize.Not_linearizable ->
        Alcotest.failf "inc-only collect counter refuted (seed %d):\n%s" seed
          (History.to_string outcome.Harness.history)
    | Linearize.Unknown | Linearize.Malformed _ -> Alcotest.fail "checker budget"
  done

(* The directed interleaving from the module documentation: inc completes,
   then dec runs inside a reader's collect window; the reader returns -1,
   a value the counter never held. *)
let test_collect_counter_refuted () =
  let workload = [ (0, [ Counter.inc ]); (1, [ Counter.read; Counter.dec ]); (2, [ Counter.read ]) ] in
  let schedule =
    Harness.Fixed
      ([ 2 ] (* reader collects reg0 = 0 *)
      @ [ 0; 0; 0 ] (* P0's inc completes *)
      @ [ 1; 1; 1; 1 ] (* P1's read completes (returns 1) *)
      @ [ 1; 1; 1 ] (* P1's dec completes *)
      @ [ 2; 2; 2 ] (* reader collects reg1 = -1, reg2 = 0, returns -1 *))
  in
  let outcome, verdict =
    Harness.run_and_check Counters.collect ~n:3 ~workload ~schedule ()
  in
  Alcotest.(check bool) "completed" true outcome.Harness.completed;
  (* the reader really returned -1 *)
  let reader_response =
    List.find_map
      (fun (c : History.call) ->
        if c.History.pid = 2 then c.History.response else None)
      (History.complete_calls outcome.Harness.history)
  in
  Alcotest.(check bool) "reader saw -1" true
    (reader_response = Some (Value.int (-1)));
  match verdict with
  | Linearize.Not_linearizable -> ()
  | Linearize.Linearizable _ ->
      Alcotest.failf "accepted the impossible history:\n%s"
        (History.to_string outcome.Harness.history)
  | Linearize.Unknown | Linearize.Malformed _ -> Alcotest.fail "checker budget"

let test_snapshot_counter_linearizable () =
  for seed = 1 to 20 do
    let workload = Harness.random_workload ~n:3 ~calls:4 ~ops:counter_ops ~seed in
    let outcome, verdict =
      Harness.run_and_check Counters.snapshot ~n:3 ~workload
        ~schedule:(Harness.Random_sched (seed * 3)) ()
    in
    Alcotest.(check bool) "completed" true outcome.Harness.completed;
    match verdict with
    | Linearize.Linearizable _ -> ()
    | _ ->
        Alcotest.failf "snapshot counter refuted (seed %d):\n%s" seed
          (History.to_string outcome.Harness.history)
  done

(* the same adversarial window that breaks collect does NOT break
   snapshot: the reader retries and returns a consistent value *)
let test_snapshot_counter_survives_directed () =
  let workload = [ (0, [ Counter.inc ]); (1, [ Counter.read; Counter.dec ]); (2, [ Counter.read ]) ] in
  let schedule =
    Harness.Fixed
      ([ 2 ] @ [ 0; 0; 0 ] @ [ 1; 1; 1; 1; 1; 1; 1 ] @ [ 1; 1; 1 ]
      @ [ 2; 2; 2; 2; 2; 2; 2; 2; 2; 2; 2 ])
  in
  let outcome, verdict =
    Harness.run_and_check Counters.snapshot ~n:3 ~workload ~schedule ()
  in
  match verdict with
  | Linearize.Linearizable _ -> ()
  | Linearize.Not_linearizable ->
      Alcotest.failf "snapshot counter broke:\n%s"
        (History.to_string outcome.Harness.history)
  | Linearize.Unknown | Linearize.Malformed _ -> Alcotest.fail "checker budget"

(* solo termination vs wait-freedom, both directions *)
let test_snapshot_read_solo_terminates () =
  let workload = [ (0, [ Counter.read ]) ] in
  let outcome, verdict =
    Harness.run_and_check Counters.snapshot ~n:2 ~workload
      ~schedule:(Harness.Fixed [ 0; 0; 0; 0; 0 ]) ()
  in
  Alcotest.(check bool) "solo read finishes in 5 steps" true
    outcome.Harness.completed;
  match verdict with
  | Linearize.Linearizable _ -> ()
  | _ -> Alcotest.fail "solo read wrong"

let test_snapshot_read_starved_by_writer () =
  let k = 30 in
  let workload =
    [ (0, [ Counter.read ]); (1, List.init k (fun _ -> Counter.inc)) ]
  in
  (* each round: the reader's two-register collect straddles a complete
     increment, so its double collect never stabilizes *)
  let round = [ 0; 1; 1; 1; 0 ] in
  let schedule = Harness.Fixed (List.concat (List.init k (fun _ -> round))) in
  let outcome = Harness.run Counters.snapshot ~n:2 ~workload ~schedule () in
  Alcotest.(check bool) "reader starved" false outcome.Harness.completed;
  let reader_responded =
    List.exists
      (fun (c : History.call) -> c.History.pid = 0 && c.History.response <> None)
      (History.calls outcome.Harness.history)
  in
  Alcotest.(check bool) "reader never responded" false reader_responded

let test_fa_from_cas () =
  let ops = [ Fetch_add.fetch_add 1; Fetch_add.fetch_add (-2); Fetch_add.read ] in
  for seed = 1 to 20 do
    let workload = Harness.random_workload ~n:3 ~calls:4 ~ops ~seed in
    let outcome, verdict =
      Harness.run_and_check From_universal.fetch_add_from_cas ~n:3 ~workload
        ~schedule:(Harness.Random_sched (seed * 11)) ()
    in
    Alcotest.(check bool) "completed" true outcome.Harness.completed;
    match verdict with
    | Linearize.Linearizable _ -> ()
    | _ ->
        Alcotest.failf "fa-from-cas refuted (seed %d):\n%s" seed
          (History.to_string outcome.Harness.history)
  done

let test_tas_from_swap () =
  let ops = [ Test_and_set.test_and_set; Test_and_set.read ] in
  for seed = 1 to 20 do
    let workload = Harness.random_workload ~n:3 ~calls:3 ~ops ~seed in
    let outcome, verdict =
      Harness.run_and_check From_universal.test_and_set_from_swap ~n:3 ~workload
        ~schedule:(Harness.Random_sched (seed * 13)) ()
    in
    Alcotest.(check bool) "completed" true outcome.Harness.completed;
    match verdict with
    | Linearize.Linearizable _ -> ()
    | _ -> Alcotest.failf "tas-from-swap refuted (seed %d)" seed
  done;
  (* exactly one test&set wins across processes *)
  let workload =
    [ (0, [ Test_and_set.test_and_set ]); (1, [ Test_and_set.test_and_set ]);
      (2, [ Test_and_set.test_and_set ]) ]
  in
  let outcome =
    Harness.run From_universal.test_and_set_from_swap ~n:3 ~workload
      ~schedule:(Harness.Random_sched 5) ()
  in
  let zeros =
    List.filter
      (fun (c : History.call) -> c.History.response = Some (Value.int 0))
      (History.complete_calls outcome.Harness.history)
  in
  Alcotest.(check int) "one winner" 1 (List.length zeros)

let test_snapshot_object () =
  let n = 3 in
  let impl = Snapshot.implementation ~n in
  for seed = 1 to 15 do
    (* single-writer discipline: process i updates only segment i *)
    let rng = Rng.create (seed * 17) in
    let workload =
      List.init n (fun pid ->
          ( pid,
            List.init 3 (fun _ ->
                if Rng.bool rng then
                  Snapshot.update ~seg:pid (Value.int (Rng.int rng 10))
                else Snapshot.scan) ))
    in
    let outcome, verdict =
      Harness.run_and_check impl ~n ~workload
        ~schedule:(Harness.Random_sched (seed * 19)) ()
    in
    Alcotest.(check bool) "completed" true outcome.Harness.completed;
    match verdict with
    | Linearize.Linearizable _ -> ()
    | _ ->
        Alcotest.failf "snapshot object refuted (seed %d):\n%s" seed
          (History.to_string outcome.Harness.history)
  done

(* Theorem 4.4's reduction: a counter from ONE fetch&add register; each
   counter op is a single atomic base step, so every history whatsoever is
   linearizable *)
let test_counter_from_fa () =
  for seed = 1 to 20 do
    let workload = Harness.random_workload ~n:4 ~calls:5 ~ops:counter_ops ~seed in
    let outcome, verdict =
      Harness.run_and_check From_fa.counter_from_fetch_add ~n:4 ~workload
        ~schedule:(Harness.Random_sched (seed * 29)) ()
    in
    Alcotest.(check bool) "completed" true outcome.Harness.completed;
    match verdict with
    | Linearize.Linearizable _ -> ()
    | _ ->
        Alcotest.failf "counter-from-fa refuted (seed %d):\n%s" seed
          (History.to_string outcome.Harness.history)
  done;
  Alcotest.(check int) "one base object" 1
    (From_fa.counter_from_fetch_add.Implementation.instances ~n:4)

let test_inc_counter_from_fi () =
  for seed = 1 to 10 do
    let workload =
      Harness.random_workload ~n:3 ~calls:4 ~ops:[ Counter.inc ] ~seed
    in
    let outcome, verdict =
      Harness.run_and_check From_fa.inc_counter_from_fetch_inc ~n:3 ~workload
        ~schedule:(Harness.Random_sched (seed * 31)) ()
    in
    Alcotest.(check bool) "completed" true outcome.Harness.completed;
    match verdict with
    | Linearize.Linearizable _ -> ()
    | _ -> Alcotest.failf "inc-counter-from-f&i refuted (seed %d)" seed
  done

let test_instances_counts () =
  Alcotest.(check int) "collect counter uses n" 4
    (Counters.collect.Implementation.instances ~n:4);
  Alcotest.(check int) "fa-from-cas uses 1" 1
    (From_universal.fetch_add_from_cas.Implementation.instances ~n:4)

(* ---- crash injection, coin-seed replay, the drain probe ------------- *)

(* the replay contract end to end, with coins AND crashes in play: a
   starving run's realized pids replayed as [Fixed] under the same
   [coin_seed] and [crashes] reproduces the history bit for bit *)
let test_crash_coin_seed_replay () =
  let workload =
    [
      (0, [ Test_and_set.test_and_set; Test_and_set.read ]);
      (1, [ Test_and_set.test_and_set; Test_and_set.read ]);
    ]
  in
  for coin_seed = 1 to 10 do
    let crashes = [ (12, 1) ] in
    let run schedule =
      Harness.run Tas_rand.implementation ~n:2 ~workload ~schedule ~coin_seed
        ~crashes ~probe:true ()
    in
    let starved =
      run (Harness.Starving { victim = 0; seed = coin_seed * 7; len = 40 })
    in
    let replayed = run (Harness.Fixed starved.Harness.pids) in
    Alcotest.(check string)
      (Printf.sprintf "history replays (coin_seed %d)" coin_seed)
      (History.to_string starved.Harness.history)
      (History.to_string replayed.Harness.history);
    Alcotest.(check (list int))
      "crashed pids replay" starved.Harness.crashed replayed.Harness.crashed
  done

(* a held lock is not a deadlock: the probe's fixpoint lets the holder
   finish its critical section, which unblocks the waiter *)
let test_probe_drains_locked_counter () =
  let workload = [ (0, [ Counter.inc ]); (1, [ Counter.inc ]) ] in
  let outcome, verdict =
    Harness.run_and_check Locked_counter.locked ~n:2 ~workload
      ~schedule:(Harness.Fixed [ 0 ]) (* P0 inside the critical section *)
      ~probe:true ()
  in
  Alcotest.(check bool) "all calls drained" true outcome.Harness.completed;
  Alcotest.(check (list (pair int int))) "nothing stuck" [] outcome.Harness.stuck;
  match verdict with
  | Linearize.Linearizable _ -> ()
  | _ -> Alcotest.fail "drained locked counter not linearizable"

(* the leaky lock IS a deadlock: release never frees the lock, so with
   nobody crashed a later acquire spins forever even solo *)
let test_probe_flags_leaky_deadlock () =
  let workload = [ (0, [ Counter.inc ]); (1, [ Counter.inc ]) ] in
  let outcome, verdict =
    Harness.run_and_check Locked_counter.leaky ~n:2 ~workload
      ~schedule:(Harness.Fixed []) ~probe:true ()
  in
  Alcotest.(check (list int)) "nobody crashed" [] outcome.Harness.crashed;
  Alcotest.(check bool) "a call is stuck" true (outcome.Harness.stuck <> []);
  (* safety still holds: the stuck call is pending, hence droppable *)
  match verdict with
  | Linearize.Linearizable _ -> ()
  | _ -> Alcotest.fail "leaky counter unsafe, not just stuck"

(* crashing the lock holder leaves the waiter stuck with [crashed] set —
   the excusable residue for a Blocking implementation *)
let test_probe_crashed_holder () =
  let workload = [ (0, [ Counter.inc ]); (1, [ Counter.inc ]) ] in
  let outcome =
    Harness.run Locked_counter.locked ~n:2 ~workload
      ~schedule:(Harness.Fixed [ 0 ])
      ~crashes:[ (1, 0) ] (* kill P0 right after it takes the lock *)
      ~probe:true ()
  in
  Alcotest.(check (list int)) "P0 crashed" [ 0 ] outcome.Harness.crashed;
  Alcotest.(check bool) "waiter stuck behind the corpse" true
    (List.exists (fun (pid, _) -> pid = 1) outcome.Harness.stuck)

(* ---- the new catalog objects, judged by both oracles ---------------- *)

let test_consensus_obj_linearizable () =
  let workload =
    [
      (0, [ Sticky.propose_int 7; Sticky.read ]);
      (1, [ Sticky.propose_int 9; Sticky.read ]);
    ]
  in
  for seed = 1 to 30 do
    let outcome =
      Harness.run Consensus_obj.implementation ~n:2 ~workload
        ~schedule:(Harness.Random_sched seed) ~probe:true ()
    in
    Alcotest.(check bool) "wait-free: everything drains" true
      outcome.Harness.completed;
    match
      Lin.Cross.verdict Consensus_obj.spec outcome.Harness.history
    with
    | Linearize.Linearizable _ -> ()
    | _ ->
        Alcotest.failf "consensus-from-swap refuted (seed %d):\n%s" seed
          (History.to_string outcome.Harness.history)
  done

let test_tas_rand_linearizable () =
  let workload =
    [
      (0, [ Test_and_set.test_and_set; Test_and_set.read ]);
      (1, [ Test_and_set.test_and_set; Test_and_set.read ]);
    ]
  in
  for seed = 1 to 30 do
    let outcome =
      Harness.run Tas_rand.implementation ~n:2 ~workload
        ~schedule:(Harness.Random_sched seed) ~probe:true ()
    in
    Alcotest.(check bool) "randomized wait-free: everything drains" true
      outcome.Harness.completed;
    (* exactly one of the two completed test&sets wins *)
    let winners =
      List.filter
        (fun (c : History.call) ->
          c.History.op.Op.name = "test&set"
          && c.History.response = Some (Value.int 0))
        (History.complete_calls outcome.Harness.history)
    in
    Alcotest.(check int)
      (Printf.sprintf "one winner (seed %d)" seed)
      1 (List.length winners);
    match Lin.Cross.verdict Tas_rand.spec outcome.Harness.history with
    | Linearize.Linearizable _ -> ()
    | _ ->
        Alcotest.failf "tas-from-registers refuted (seed %d):\n%s" seed
          (History.to_string outcome.Harness.history)
  done

(* the transplanted starving adversary: the victim moves only when nobody
   else is active, so a writer that outlasts the schedule freezes the
   reader out entirely — no hand-built round schedule needed *)
let test_starving_schedule () =
  let workload =
    [ (0, [ Counter.read ]); (1, List.init 60 (fun _ -> Counter.inc)) ]
  in
  let outcome =
    Harness.run Counters.snapshot ~n:2 ~workload
      ~schedule:(Harness.Starving { victim = 0; seed = 11; len = 50 })
      ()
  in
  Alcotest.(check bool) "victim never even stepped" true
    (List.for_all (fun pid -> pid = 1) outcome.Harness.pids);
  let reader_responded =
    List.exists
      (fun (c : History.call) -> c.History.pid = 0 && c.History.response <> None)
      (History.calls outcome.Harness.history)
  in
  Alcotest.(check bool) "victim reader never responded" false reader_responded

let suite =
  [
    Alcotest.test_case "collect counter, inc-only ok" `Quick
      test_collect_counter_inc_only_linearizable;
    Alcotest.test_case "collect counter refuted (directed)" `Quick
      test_collect_counter_refuted;
    Alcotest.test_case "snapshot counter linearizable" `Quick
      test_snapshot_counter_linearizable;
    Alcotest.test_case "snapshot counter survives directed" `Quick
      test_snapshot_counter_survives_directed;
    Alcotest.test_case "snapshot read solo-terminates" `Quick
      test_snapshot_read_solo_terminates;
    Alcotest.test_case "snapshot read starved by writer" `Quick
      test_snapshot_read_starved_by_writer;
    Alcotest.test_case "fetch&add from cas" `Quick test_fa_from_cas;
    Alcotest.test_case "test&set from swap" `Quick test_tas_from_swap;
    Alcotest.test_case "snapshot object" `Quick test_snapshot_object;
    Alcotest.test_case "counter from fetch&add (Thm 4.4)" `Quick test_counter_from_fa;
    Alcotest.test_case "inc-counter from fetch&inc" `Quick test_inc_counter_from_fi;
    Alcotest.test_case "instance counts" `Quick test_instances_counts;
    Alcotest.test_case "crash + coin-seed replay bit-identical" `Quick
      test_crash_coin_seed_replay;
    Alcotest.test_case "probe drains a held lock" `Quick
      test_probe_drains_locked_counter;
    Alcotest.test_case "probe flags the leaky-lock deadlock" `Quick
      test_probe_flags_leaky_deadlock;
    Alcotest.test_case "crashed lock holder leaves waiter stuck" `Quick
      test_probe_crashed_holder;
    Alcotest.test_case "consensus-from-swap linearizable" `Quick
      test_consensus_obj_linearizable;
    Alcotest.test_case "tas-from-registers linearizable" `Quick
      test_tas_rand_linearizable;
    Alcotest.test_case "starving schedule starves the reader" `Quick
      test_starving_schedule;
  ]
