(* The fuzzer's own regression suite.

   Pinned-seed tests: the campaign rediscovers the planted agreement
   violation in [Consensus.Flawed] and the planted exclusion violation in
   [Mutex.naive_flag]; the shrinker is deterministic and its output
   replays to the same verdict; campaigns are bit-identical across jobs
   counts; the schedule codec round-trips and rejects malformed input;
   [Run.exec_script] reproduces recorded executions event for event. *)

open Sim

let find_scenario name =
  match Fuzz.Scenario.find name with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "scenario %s: %s" name e

let violation = Alcotest.testable (Fmt.of_to_string Fuzz.Scenario.violation_to_string) ( = )

(* the acceptance pin: seed 1, 64 runs, shrink on *)
let flawed_campaign () =
  Fuzz.Campaign.run ~shrink:true ~runs:64 ~seed:1 (find_scenario "flawed")

let test_flawed_rediscovered () =
  let r = flawed_campaign () in
  Alcotest.(check bool) "violations found" true (r.Fuzz.Campaign.violations > 0);
  match r.Fuzz.Campaign.first_violation with
  | None -> Alcotest.fail "no counterexample"
  | Some cex ->
      Alcotest.check violation "agreement violation"
        Fuzz.Scenario.Inconsistent cex.Fuzz.Campaign.violation;
      Alcotest.(check bool) "shrunk to <= 12 steps" true
        (Fuzz.Schedule.steps cex.Fuzz.Campaign.shrunk <= 12);
      (* shrink soundness: the shrunk schedule replays to the same verdict *)
      let sc = find_scenario "flawed" in
      Alcotest.(check (option violation))
        "shrunk schedule still witnesses"
        (Some Fuzz.Scenario.Inconsistent)
        (sc.Fuzz.Scenario.replay cex.Fuzz.Campaign.shrunk)

let test_flawed_artifact_replays () =
  let r = flawed_campaign () in
  match r.Fuzz.Campaign.first_violation with
  | None -> Alcotest.fail "no counterexample"
  | Some cex ->
      (* the artifact is a Trace_io trace; reloaded, its decisions still
         disagree *)
      let trace = Trace_io.of_text_int cex.Fuzz.Campaign.artifact in
      let decisions = List.map snd (Trace.decisions trace) in
      Alcotest.(check bool) "decisions disagree" true
        (Checker.inconsistent ~decisions);
      (* and it survives a file round-trip byte for byte *)
      let path = Filename.temp_file "randsync-fuzz" ".trace" in
      Trace_io.save_text ~path cex.Fuzz.Campaign.artifact;
      let reloaded = Trace_io.load_text ~path in
      Sys.remove path;
      Alcotest.(check string) "artifact file roundtrip"
        cex.Fuzz.Campaign.artifact reloaded

let test_shrinker_deterministic () =
  let sc = find_scenario "flawed" in
  let r = flawed_campaign () in
  match r.Fuzz.Campaign.first_violation with
  | None -> Alcotest.fail "no counterexample"
  | Some cex ->
      let shrink () =
        Fuzz.Shrink.minimize ~replay:sc.Fuzz.Scenario.replay
          ~target:cex.Fuzz.Campaign.violation cex.Fuzz.Campaign.original
      in
      let s1, st1 = shrink () in
      let s2, st2 = shrink () in
      Alcotest.(check bool) "same schedule" true (s1 = s2);
      Alcotest.(check int) "same candidate count" st1.Fuzz.Shrink.candidates
        st2.Fuzz.Shrink.candidates;
      Alcotest.(check int) "same accepted count" st1.Fuzz.Shrink.accepted
        st2.Fuzz.Shrink.accepted

let test_campaign_jobs_invariant () =
  let run pool =
    Fuzz.Campaign.run ?pool ~shrink:true ~runs:96 ~seed:7
      (find_scenario "flawed")
  in
  let seq = run None in
  let par4 = Par.with_pool ~jobs:4 (fun pool -> run (Some pool)) in
  Alcotest.(check bool) "jobs 1 and 4 bit-identical" true (seq = par4)

let test_mutex_scenario () =
  let sc = find_scenario "mutex-naive-flag" in
  let r = Fuzz.Campaign.run ~shrink:true ~runs:64 ~seed:1 sc in
  match r.Fuzz.Campaign.first_violation with
  | None -> Alcotest.fail "naive-flag violation not found"
  | Some cex ->
      Alcotest.check violation "exclusion violation" Fuzz.Scenario.Exclusion
        cex.Fuzz.Campaign.violation;
      Alcotest.(check (option violation))
        "shrunk schedule still witnesses" (Some Fuzz.Scenario.Exclusion)
        (sc.Fuzz.Scenario.replay cex.Fuzz.Campaign.shrunk);
      Alcotest.(check bool) "shrunk no longer than original" true
        (Fuzz.Schedule.length cex.Fuzz.Campaign.shrunk
        <= Fuzz.Schedule.length cex.Fuzz.Campaign.original)

let test_safe_scenarios_clean () =
  List.iter
    (fun name ->
      let r =
        Fuzz.Campaign.run ~shrink:true ~runs:64 ~seed:1 (find_scenario name)
      in
      Alcotest.(check int) (name ^ " clean") 0 r.Fuzz.Campaign.violations)
    [
      "mutex-peterson-2";
      "mutex-swap-lock";
      "cas-1";
      "lin-lock-counter";
      "lin-consensus-swap";
      "lin-tas-rand";
    ]

(* the planted livelock: the leaky lock's release leaves the lock held,
   so the drain probe reports a call nobody can ever unblock — the
   [Stuck] progress verdict, under a pinned seed, shrunk and replayed *)
let test_stuck_counter_found () =
  let sc = find_scenario "lin-stuck-counter" in
  let r = Fuzz.Campaign.run ~shrink:true ~runs:64 ~seed:3 sc in
  Alcotest.(check bool) "violations found" true (r.Fuzz.Campaign.violations > 0);
  match r.Fuzz.Campaign.first_violation with
  | None -> Alcotest.fail "no counterexample"
  | Some cex ->
      Alcotest.check violation "progress violation" Fuzz.Scenario.Stuck
        cex.Fuzz.Campaign.violation;
      (* shrink soundness for the new verdict kind *)
      Alcotest.(check (option violation))
        "shrunk schedule still witnesses Stuck" (Some Fuzz.Scenario.Stuck)
        (sc.Fuzz.Scenario.replay cex.Fuzz.Campaign.shrunk);
      Alcotest.(check bool) "shrunk no longer than original" true
        (Fuzz.Schedule.length cex.Fuzz.Campaign.shrunk
        <= Fuzz.Schedule.length cex.Fuzz.Campaign.original)

(* deadlock detection is jobs-invariant like every other verdict *)
let test_stuck_campaign_jobs_invariant () =
  let run pool =
    Fuzz.Campaign.run ?pool ~shrink:true ~runs:48 ~seed:3
      (find_scenario "lin-stuck-counter")
  in
  let seq = run None in
  let par2 = Par.with_pool ~jobs:2 (fun pool -> run (Some pool)) in
  Alcotest.(check bool) "jobs 1 and 2 bit-identical" true (seq = par2)

let test_budget_truncates_cleanly () =
  let budget = Robust.Budget.make ~nodes:10 () in
  let r =
    Fuzz.Campaign.run ~budget ~shrink:false ~runs:1000 ~seed:1
      (find_scenario "cas-1")
  in
  Alcotest.(check int) "exactly the admitted prefix ran" 10
    r.Fuzz.Campaign.runs_done;
  Alcotest.(check string) "truncated (nodes)" "truncated (nodes)"
    (Robust.Budget.completeness_to_string r.Fuzz.Campaign.completeness)

(* ---- shrink truncation reasons (cap vs. meter) ---- *)

let test_shrink_truncation_reasons () =
  let sc = find_scenario "flawed" in
  let r = flawed_campaign () in
  match r.Fuzz.Campaign.first_violation with
  | None -> Alcotest.fail "no counterexample"
  | Some cex ->
      let replay = sc.Fuzz.Scenario.replay
      and target = cex.Fuzz.Campaign.violation
      and original = cex.Fuzz.Campaign.original in
      (* the shrinker's own candidate cap reports its dedicated reason —
         the regression was folding it into the meter's [`Steps], telling
         the operator to raise the wrong knob *)
      let _, st =
        Fuzz.Shrink.minimize ~max_candidates:3 ~replay ~target original
      in
      Alcotest.(check string) "cap has its own reason"
        "truncated (candidates)"
        (Fuzz.Shrink.completeness_to_string st.Fuzz.Shrink.completeness);
      Alcotest.(check bool) "cap respected" true
        (st.Fuzz.Shrink.candidates <= 3);
      (* a tripped step meter keeps the meter's reason *)
      let meter =
        Robust.Budget.Meter.create ~poll_every:1
          (Robust.Budget.make ~steps:3 ())
      in
      let _, st = Fuzz.Shrink.minimize ~meter ~replay ~target original in
      Alcotest.(check string) "meter trip keeps its reason"
        "truncated (steps)"
        (Fuzz.Shrink.completeness_to_string st.Fuzz.Shrink.completeness);
      (* and the unbudgeted run on the same input is exhaustive *)
      let _, st = Fuzz.Shrink.minimize ~replay ~target original in
      Alcotest.(check string) "uncapped run exhaustive" "exhaustive"
        (Fuzz.Shrink.completeness_to_string st.Fuzz.Shrink.completeness)

(* ---- coin canonicalization ---- *)

let test_zero_coins_canonicalizes () =
  (* a synthetic oracle that pins the pid sequence (so the removal passes
     cannot fire) and requires the last coin to stay 1: the sweep must
     zero the zeroable coin, revert the unzeroable one, and leave the
     coinless entry alone *)
  let shape sched =
    List.map (function `Step (p, _) -> `S p | `Crash p -> `C p) sched
  in
  let witnesses sched =
    shape sched = [ `S 0; `S 1; `S 2 ]
    && match List.nth sched 2 with `Step (2, Some 1) -> true | _ -> false
  in
  let replay sched = if witnesses sched then Some () else None in
  let original = [ `Step (0, Some 3); `Step (1, None); `Step (2, Some 1) ] in
  let shrunk, st = Fuzz.Shrink.minimize ~replay ~target:() original in
  Alcotest.(check bool) "zeroed where sound, reverted where not" true
    (shrunk = [ `Step (0, Some 0); `Step (1, None); `Step (2, Some 1) ]);
  Alcotest.(check string) "exhaustive" "exhaustive"
    (Fuzz.Shrink.completeness_to_string st.Fuzz.Shrink.completeness);
  (* deterministic: identical input, identical schedule and stats *)
  let shrunk2, st2 = Fuzz.Shrink.minimize ~replay ~target:() original in
  Alcotest.(check bool) "pass is deterministic" true
    (shrunk = shrunk2
    && st.Fuzz.Shrink.candidates = st2.Fuzz.Shrink.candidates
    && st.Fuzz.Shrink.accepted = st2.Fuzz.Shrink.accepted)

(* ---- schedule codec ---- *)

let test_schedule_roundtrip_cases () =
  let sched =
    [ `Step (0, None); `Step (1, Some 1); `Crash 2; `Step (1, None) ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Fuzz.Schedule.of_text (Fuzz.Schedule.to_text sched) = sched);
  Alcotest.(check int) "steps counts steps only" 3 (Fuzz.Schedule.steps sched);
  Alcotest.(check (list int)) "pids sorted" [ 0; 1; 2 ]
    (Fuzz.Schedule.pids sched)

let schedule_gen =
  let open QCheck.Gen in
  list_size (int_bound 40)
    (oneof
       [
         map (fun pid -> `Step (pid, None)) (int_bound 7);
         map2 (fun pid c -> `Step (pid, Some c)) (int_bound 7) (int_bound 3);
         map (fun pid -> `Crash pid) (int_bound 7);
       ])

let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"schedule text roundtrip" ~count:300
    (QCheck.make schedule_gen)
    (fun sched -> Fuzz.Schedule.of_text (Fuzz.Schedule.to_text sched) = sched)
  |> QCheck_alcotest.to_alcotest

let test_schedule_crlf_and_trailing_whitespace () =
  (* Windows checkouts and pasted text arrive with CRLF endings and
     trailing blanks; per-line trimming must make them parse identically
     — the old parser handed a stowaway "1\r" token to int_of_string *)
  let sched = [ `Step (0, None); `Step (1, Some 1); `Crash 2 ] in
  let text = Fuzz.Schedule.to_text sched in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "CRLF parses identically" true
    (Fuzz.Schedule.of_text (String.concat "\r\n" lines) = sched);
  Alcotest.(check bool) "trailing whitespace ignored" true
    (Fuzz.Schedule.of_text
       (String.concat "\n" (List.map (fun l -> l ^ "  \t") lines))
    = sched);
  Alcotest.(check bool) "trailing blank lines ignored" true
    (Fuzz.Schedule.of_text (text ^ "\r\n\r\n") = sched);
  (* trimming must not loosen what a line may contain *)
  List.iter
    (fun text ->
      match Fuzz.Schedule.of_text text with
      | exception Trace_io.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed schedule %S" text)
    [ "fuzz-schedule v1\r\nS zero\r\n"; "fuzz-schedule v1\nS 0 1 2  \n" ]

let test_schedule_rejects_malformed () =
  List.iter
    (fun text ->
      match Fuzz.Schedule.of_text text with
      | exception Trace_io.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed schedule %S" text)
    [
      "";
      "fuzz-schedule v9\nS 0";
      "S 0";
      "fuzz-schedule v1\nQ 0";
      "fuzz-schedule v1\nS zero";
      "fuzz-schedule v1\nS 0 1 2";
      "fuzz-schedule v1\nX";
    ]

let test_schedule_file_roundtrip () =
  let sched = [ `Step (1, Some 0); `Crash 0; `Step (1, None) ] in
  let path = Filename.temp_file "randsync-fuzz" ".sched" in
  Fuzz.Schedule.save ~path sched;
  let sched' = Fuzz.Schedule.load ~path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (sched = sched')

(* ---- exec_script replay fidelity ---- *)

let test_exec_script_reproduces_run () =
  (* record a run, extract its schedule, replay from a fresh initial
     configuration: the trace must match event for event *)
  List.iter
    (fun seed ->
      let p =
        match Consensus.Registry.find "cas-1" with
        | Some p -> p
        | None -> Alcotest.fail "cas-1 not registered"
      in
      let config () = Consensus.Protocol.initial_config p ~inputs:[ 0; 1 ] in
      let original = Run.exec_fast (Sched.random ~seed) (config ()) in
      let script = Fuzz.Schedule.of_trace original.Run.trace in
      let replayed = Run.exec_script ~script (config ()) in
      Alcotest.(check bool)
        (Printf.sprintf "trace identical (seed %d)" seed)
        true
        (original.Run.trace = replayed.Run.trace))
    [ 1; 2; 3; 4; 5 ]

let test_exec_script_total_on_mangled_scripts () =
  (* deleting arbitrary entries must never wedge the replay — the property
     the shrinker relies on *)
  let p = Consensus.Flawed.first_writer ~r:1 in
  let config () = Consensus.Protocol.initial_config p ~inputs:[ 0; 1 ] in
  let original = Run.exec_fast (Sched.random ~seed:3) (config ()) in
  let script = Fuzz.Schedule.of_trace original.Run.trace in
  let n = List.length script in
  for mask = 0 to min 255 ((1 lsl n) - 1) do
    let mangled =
      List.filteri (fun i _ -> mask land (1 lsl i) = 0) script
    in
    ignore (Run.exec_script ~script:mangled (config ()))
  done

let suite =
  [
    Alcotest.test_case "flawed rediscovered and shrunk" `Quick
      test_flawed_rediscovered;
    Alcotest.test_case "flawed artifact replays" `Quick
      test_flawed_artifact_replays;
    Alcotest.test_case "shrinker deterministic" `Quick
      test_shrinker_deterministic;
    Alcotest.test_case "campaign jobs-invariant" `Quick
      test_campaign_jobs_invariant;
    Alcotest.test_case "mutex scenario" `Quick test_mutex_scenario;
    Alcotest.test_case "safe scenarios clean" `Quick test_safe_scenarios_clean;
    Alcotest.test_case "stuck counter found, shrunk, replayed" `Quick
      test_stuck_counter_found;
    Alcotest.test_case "stuck campaign jobs-invariant" `Quick
      test_stuck_campaign_jobs_invariant;
    Alcotest.test_case "budget truncates cleanly" `Quick
      test_budget_truncates_cleanly;
    Alcotest.test_case "shrink truncation reasons" `Quick
      test_shrink_truncation_reasons;
    Alcotest.test_case "zero-coins canonicalization" `Quick
      test_zero_coins_canonicalizes;
    Alcotest.test_case "schedule roundtrip cases" `Quick
      test_schedule_roundtrip_cases;
    Alcotest.test_case "schedule CRLF + trailing whitespace" `Quick
      test_schedule_crlf_and_trailing_whitespace;
    prop_schedule_roundtrip;
    Alcotest.test_case "schedule rejects malformed" `Quick
      test_schedule_rejects_malformed;
    Alcotest.test_case "schedule file roundtrip" `Quick
      test_schedule_file_roundtrip;
    Alcotest.test_case "exec_script reproduces runs" `Quick
      test_exec_script_reproduces_run;
    Alcotest.test_case "exec_script total on mangled scripts" `Quick
      test_exec_script_total_on_mangled_scripts;
  ]
