(* Exit-code hygiene and resource-governance flags of the randsync binary,
   checked by actually running it (dune's test action runs with cwd =
   _build/default/test, so the executable is a relative path away).

   The contract under test (see README):
     0 clean, 1 bad args, 2 violation demonstrated, 3 budget-truncated,
     4 attack construction failed, 5 progress violation (stuck call). *)

let binary = Filename.concat ".." "bin/randsync_cli.exe"

type run = { code : int; out : string }

let run_cli args =
  let out_file = Filename.temp_file "randsync-cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_file with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s > %s 2>&1"
          (Filename.quote_command binary args)
          (Filename.quote out_file)
      in
      let code = Sys.command cmd in
      let ic = open_in_bin out_file in
      let out = really_input_string ic (in_channel_length ic) in
      close_in ic;
      { code; out })

let check_code name expected { code; out } =
  if code <> expected then
    Alcotest.failf "%s: exit %d, expected %d; output:\n%s" name code expected
      out

let contains = Test_util.contains

(* grep-able lines of the mc output: "visited=N ..." and "verdict: ..." *)
let line_with prefix { out; _ } =
  match
    List.find_opt
      (fun l ->
        String.length l > String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      (String.split_on_char '\n' out)
  with
  | None -> Alcotest.failf "no %S line in output:\n%s" prefix out
  | Some l -> l

let visited_of r =
  let l = line_with "visited=" r in
  let v = String.sub l 8 (String.index l ' ' - 8) in
  match int_of_string_opt v with
  | Some n -> n
  | None -> Alcotest.failf "unparseable visited count %S" v

let verdict_of r = line_with "verdict: " r

let test_exit_codes () =
  check_code "clean mc" 0 (run_cli [ "mc"; "cas-1"; "--inputs"; "0,1" ]);
  check_code "unknown protocol" 1 (run_cli [ "mc"; "no-such-protocol" ]);
  check_code "bad inputs" 1 (run_cli [ "mc"; "cas-1"; "--inputs"; "0,zebra" ]);
  check_code "bad dedup" 1 (run_cli [ "mc"; "cas-1"; "--dedup"; "turbo" ]);
  let violating =
    run_cli [ "mc"; "flawed-first-writer-r1"; "--inputs"; "0,1" ]
  in
  check_code "violation" 2 violating;
  Alcotest.(check bool) "violation printed" true
    (contains violating.out "VIOLATION");
  check_code "attack demonstrates violation" 2
    (run_cli [ "attack"; "flawed-unanimous-rw-r1" ]);
  check_code "attack fails on correct protocol" 4 (run_cli [ "attack"; "cas-1" ])

let test_budget_truncation () =
  let r =
    run_cli
      [ "mc"; "counter-3"; "--inputs"; "0,1"; "--depth"; "12"; "--max-nodes";
        "200" ]
  in
  check_code "node budget exits truncated" 3 r;
  Alcotest.(check bool) "truncated verdict printed" true
    (contains r.out "verdict: truncated (nodes)");
  Alcotest.(check int) "visited exactly the allowance" 200 (visited_of r);
  (* the node budget stays bit-deterministic under --jobs *)
  let r2 =
    run_cli
      [ "mc"; "counter-3"; "--inputs"; "0,1"; "--depth"; "12"; "--max-nodes";
        "200"; "--jobs"; "2" ]
  in
  check_code "same under --jobs 2" 3 r2;
  Alcotest.(check int) "same frontier under --jobs 2" 200 (visited_of r2)

let test_deadline_terminates () =
  (* an over-budget scenario: an effectively unbounded search that a 1s
     deadline must stop within ~2x of the deadline, exiting 3 *)
  let t0 = Unix.gettimeofday () in
  let r =
    run_cli
      [ "mc"; "counter-3"; "--inputs"; "0,1,1,0"; "--depth"; "200";
        "--max-states"; "2000000000"; "--deadline"; "1s" ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_code "deadline exits truncated" 3 r;
  Alcotest.(check bool) "verdict line" true
    (contains r.out "verdict: truncated (deadline)");
  (* ~2x deadline plus generous slack for process startup on a loaded CI *)
  Alcotest.(check bool)
    (Printf.sprintf "terminated in %.2fs" elapsed)
    true (elapsed < 5.)

let test_checkpoint_resume_round_trip () =
  let ckpt = Filename.temp_file "randsync-cli-ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
    (fun () ->
      let scenario =
        [ "mc"; "counter-3"; "--inputs"; "0,1"; "--depth"; "12" ]
      in
      let base = run_cli scenario in
      check_code "uninterrupted run" 0 base;
      let interrupted =
        run_cli (scenario @ [ "--max-nodes"; "5000"; "--checkpoint"; ckpt ])
      in
      check_code "interrupted run" 3 interrupted;
      let resumed = run_cli (scenario @ [ "--resume"; ckpt ]) in
      check_code "resumed run" 0 resumed;
      Alcotest.(check int) "resume reproduces the uninterrupted node count"
        (visited_of base) (visited_of resumed);
      (* at depth 12 the base verdict is "truncated (depth)" — what resume
         must reproduce is the base verdict, whatever it is *)
      Alcotest.(check string) "resume reproduces the verdict"
        (verdict_of base) (verdict_of resumed);
      (* resuming against different parameters is refused as bad args *)
      check_code "mismatched resume refused" 1
        (run_cli
           [ "mc"; "counter-3"; "--inputs"; "0,1"; "--depth"; "13"; "--resume";
             ckpt ]);
      check_code "garbage checkpoint refused" 1
        (run_cli (scenario @ [ "--resume"; "/dev/null" ])))

let test_fuzz_subcommand () =
  (* the acceptance pin: with seed 1, the flawed scenario is found and
     shrunk to <= 12 steps, and the saved trace replays to INCONSISTENT
     through `randsync trace` *)
  let out = Filename.temp_file "randsync-cli-fuzz" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let r =
        run_cli
          [ "fuzz"; "flawed"; "--runs"; "64"; "--seed"; "1"; "--shrink";
            "--out"; out ]
      in
      check_code "flawed fuzz demonstrates violation" 2 r;
      Alcotest.(check bool) "VIOLATION line printed" true
        (contains r.out "VIOLATION (inconsistent)");
      let shrunk =
        let l = line_with "VIOLATION" r in
        match
          List.find_opt
            (fun tok -> Test_util.contains tok "shrunk-steps=")
            (String.split_on_char ' ' l)
        with
        | Some tok ->
            int_of_string
              (String.sub tok 13 (String.length tok - 13))
        | None -> Alcotest.failf "no shrunk-steps field in %S" l
      in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d <= 12 steps" shrunk)
        true (shrunk <= 12);
      let replay = run_cli [ "trace"; out ] in
      check_code "saved witness loads" 0 replay;
      Alcotest.(check bool) "witness replays inconsistent" true
        (contains replay.out "INCONSISTENT");
      (* identical seeds, identical campaigns at --jobs 1 and 4 (modulo the
         saved-file line, absent here) *)
      let args =
        [ "fuzz"; "flawed"; "--runs"; "64"; "--seed"; "1"; "--shrink" ]
      in
      let j1 = run_cli args in
      let j4 = run_cli (args @ [ "--jobs"; "4" ]) in
      check_code "jobs 1" 2 j1;
      check_code "jobs 4" 2 j4;
      Alcotest.(check string) "bit-identical output across --jobs" j1.out
        j4.out)

let test_fuzz_exit_codes () =
  check_code "clean scenario" 0
    (run_cli [ "fuzz"; "cas-1"; "--runs"; "32"; "--seed"; "1" ]);
  check_code "unknown scenario" 1 (run_cli [ "fuzz"; "no-such-scenario" ]);
  check_code "bad inputs" 1
    (run_cli [ "fuzz"; "cas-1"; "--inputs"; "0,zebra" ]);
  let truncated =
    run_cli
      [ "fuzz"; "cas-1"; "--runs"; "64"; "--seed"; "1"; "--max-runs"; "16" ]
  in
  check_code "run budget exits truncated" 3 truncated;
  Alcotest.(check bool) "truncated verdict printed" true
    (contains truncated.out "verdict: truncated (nodes)");
  Alcotest.(check bool) "admitted prefix reported" true
    (contains truncated.out "done=16")

(* the progress dimension of the exit-code contract: the planted
   leaky-lock deadlock exits 5 (not 2 — safety held), at any --jobs *)
let test_fuzz_progress_exit_code () =
  let args = [ "fuzz"; "lin-stuck-counter"; "--runs"; "32"; "--seed"; "3" ] in
  let r1 = run_cli args in
  check_code "stuck exits 5" 5 r1;
  Alcotest.(check bool) "stuck verdict printed" true
    (contains r1.out "VIOLATION (stuck)");
  let r2 = run_cli (args @ [ "--jobs"; "2" ]) in
  check_code "stuck exits 5 under --jobs 2" 5 r2;
  Alcotest.(check string) "output jobs-invariant" r1.out r2.out;
  (* a non-linearizable witness still exits 2, not 5 *)
  check_code "safety violation still exits 2" 2
    (run_cli
       [ "fuzz"; "lin-collect-counter"; "--runs"; "300"; "--seed"; "42" ])

let test_metrics_and_progress () =
  (* --metrics writes line-JSON whose counters equal the stdout numbers;
     the dump happens before the process exits, violation or not.
     Zero-valued counters are omitted, so a missing name reads as 0. *)
  let counter_of_metrics path name =
    let ic = open_in path in
    let prefix =
      Printf.sprintf {|{"type":"counter","name":"%s","value":|} name
    in
    let plen = String.length prefix in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
          if String.length line > plen && String.sub line 0 plen = prefix then
            go (int_of_string (String.sub line plen (String.length line - plen - 1)))
          else go acc
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go 0)
  in
  let path = Filename.temp_file "randsync-cli" ".metrics" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let scenario = [ "mc"; "counter-3"; "--inputs"; "0,1"; "--depth"; "12" ] in
      let r = run_cli (scenario @ [ "--metrics"; path ]) in
      check_code "mc with --metrics" 0 r;
      Alcotest.(check int) "mc/visited counter = stdout visited"
        (visited_of r)
        (counter_of_metrics path "mc/visited");
      (* same contract under --jobs: counters come from the merged result *)
      let r2 = run_cli (scenario @ [ "--metrics"; path; "--jobs"; "2" ]) in
      check_code "mc --jobs 2 with --metrics" 0 r2;
      Alcotest.(check int) "jobs-invariant visited counter" (visited_of r)
        (counter_of_metrics path "mc/visited");
      (* a violating run dumps its metrics before exiting 2 *)
      check_code "violation still exits 2" 2
        (run_cli
           [ "mc"; "flawed-first-writer-r1"; "--inputs"; "0,1"; "--metrics";
             path ]);
      Alcotest.(check bool) "metrics dumped before the nonzero exit" true
        (counter_of_metrics path "mc/visited" > 0);
      (* fuzz shares the flag; its counters mirror the campaign record *)
      let f =
        run_cli
          [ "fuzz"; "cas-1"; "--runs"; "32"; "--seed"; "1"; "--metrics"; path ]
      in
      check_code "fuzz with --metrics" 0 f;
      Alcotest.(check int) "fuzz/runs counter" 32
        (counter_of_metrics path "fuzz/runs");
      (* --progress heartbeats on stderr without disturbing exit codes *)
      let p = run_cli (scenario @ [ "--progress" ]) in
      check_code "mc with --progress" 0 p;
      Alcotest.(check bool) "heartbeat line printed" true
        (contains p.out "mc: nodes="))

(* --state flat cannot checkpoint: an explicit ask for both is refused
   loudly (exit 1), never silently downgraded; the implicit default
   under --checkpoint/--resume picks the closure engine and works *)
let test_state_flat_checkpoint_conflict () =
  let ckpt = Filename.temp_file "randsync-cli-flat" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
    (fun () ->
      let scenario = [ "mc"; "counter-3"; "--inputs"; "0,1"; "--depth"; "12" ] in
      let conflict =
        run_cli (scenario @ [ "--state"; "flat"; "--checkpoint"; ckpt ])
      in
      check_code "flat + --checkpoint refused" 1 conflict;
      Alcotest.(check bool) "refusal names the conflict" true
        (contains conflict.out "--state flat conflicts");
      check_code "flat + --resume refused" 1
        (run_cli (scenario @ [ "--state"; "flat"; "--resume"; ckpt ]));
      check_code "unknown --state refused" 1
        (run_cli (scenario @ [ "--state"; "turbo" ]));
      (* an explicit closure ask checkpoints fine *)
      check_code "closure + --checkpoint works" 3
        (run_cli
           (scenario @ [ "--state"; "closure"; "--max-nodes"; "5000";
                         "--checkpoint"; ckpt ]));
      (* and --state flat alone matches the default engine's verdict *)
      let flat = run_cli (scenario @ [ "--state"; "flat" ]) in
      let default = run_cli scenario in
      check_code "flat alone works" 0 flat;
      Alcotest.(check string) "flat = default output" default.out flat.out)

(* a SIGTERM'd run still dumps its metrics before exiting: the budget's
   cancel token turns the signal into a truncated (cancelled) verdict,
   and the Obs sink is flushed on that path like any other *)
let test_sigterm_dumps_metrics () =
  let metrics = Filename.temp_file "randsync-cli-term" ".metrics" in
  let out = Filename.temp_file "randsync-cli-term" ".out" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ metrics; out ])
    (fun () ->
      Sys.remove metrics;
      let outfd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
      let argv =
        [| binary; "mc"; "counter-3"; "--inputs"; "0,1,1,0"; "--depth"; "200";
           "--max-states"; "2000000000"; "--metrics"; metrics |]
      in
      let pid = Unix.create_process binary argv Unix.stdin outfd outfd in
      Unix.close outfd;
      Unix.sleepf 0.4;
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 3 -> ()
      | _, Unix.WEXITED n ->
          Alcotest.failf "SIGTERM'd mc exited %d, expected 3" n
      | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
          Alcotest.fail "SIGTERM'd mc died without its epilogue");
      let ic = open_in_bin out in
      let printed = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "cancelled verdict printed" true
        (contains printed "verdict: truncated (cancelled)");
      Alcotest.(check bool) "metrics dumped on the signal path" true
        (Sys.file_exists metrics);
      let ic = open_in_bin metrics in
      let dumped = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "dump carries the mc counters" true
        (contains dumped {|"cmd":"mc"|} && contains dumped "mc/visited"))

(* numeric-flag hygiene: degenerate counts are refused as bad args
   (exit 1) with a message naming the flag, never silently clamped.
   cmdliner already rejects the space-separated form of a negative
   operand as a parse error, so the `=` forms below are the ones that
   reach our validation. *)
let test_numeric_validation () =
  let refused name args needle =
    let r = run_cli args in
    check_code name 1 r;
    Alcotest.(check bool) (name ^ " names the flag") true (contains r.out needle)
  in
  refused "mc --jobs=-1"
    [ "mc"; "cas-1"; "--inputs"; "0,1"; "--jobs=-1" ]
    "--jobs must be >= 0";
  refused "synth --jobs=-1"
    [ "synth"; "--registers"; "1"; "--depth"; "1"; "--jobs=-1" ]
    "--jobs must be >= 0";
  refused "fuzz --runs=0" [ "fuzz"; "flawed"; "--runs=0" ] "--runs must be >= 1";
  refused "fuzz --runs=-5" [ "fuzz"; "flawed"; "--runs=-5" ]
    "--runs must be >= 1";
  refused "submit --attempts=0"
    [ "submit"; "--socket"; "/nonexistent.sock"; "--attempts=0"; "--ping" ]
    "--attempts must be >= 1";
  (* --table-mem-budget: degenerate sizes were already refused; pin it *)
  refused "mc --table-mem-budget 0"
    [ "mc"; "cas-1"; "--inputs"; "0,1"; "--state"; "flat";
      "--table-mem-budget"; "0" ]
    "--table-mem-budget";
  refused "mc --table-mem-budget 0k"
    [ "mc"; "cas-1"; "--inputs"; "0,1"; "--state"; "flat";
      "--table-mem-budget"; "0k" ]
    "--table-mem-budget";
  refused "mc --table-mem-budget k"
    [ "mc"; "cas-1"; "--inputs"; "0,1"; "--state"; "flat";
      "--table-mem-budget"; "k" ]
    "--table-mem-budget"

(* the synth subcommand's exit-code and output contract *)
let test_synth_subcommand () =
  (* rw depth 1 is the paper's depth-1 impossibility: exhaustive, no
     protocol beyond the trivial n=1 *)
  let rw =
    run_cli
      [ "synth"; "--registers"; "1"; "--depth"; "1"; "--seed"; "1" ]
  in
  check_code "rw depth 1 exhausts clean" 0 rw;
  Alcotest.(check bool) "frontier verdict line" true
    (contains rw.out "frontier: n=1 (no correct protocol for n=2 in this class)");
  Alcotest.(check bool) "completeness line" true
    (contains rw.out "completeness: exhaustive");
  (* swap at depth 1 synthesizes a 2-consensus protocol and registers it *)
  let lemmas = Filename.temp_file "randsync-cli-synth" ".lemmas" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove lemmas with Sys_error _ -> ())
    (fun () ->
      let swap =
        run_cli
          [ "synth"; "--objects"; "swap"; "--registers"; "1"; "--depth"; "1";
            "--procs"; "3"; "--seed"; "1"; "--lemmas"; lemmas ]
      in
      check_code "swap depth 1 synthesizes" 0 swap;
      Alcotest.(check bool) "synthesized line names a registry entry" true
        (contains swap.out "synthesized: synth:swap:r1:");
      Alcotest.(check bool) "frontier n=2" true
        (contains swap.out "frontier: n=2");
      Alcotest.(check bool) "lemma file written" true
        (contains swap.out "lemmas saved to" && Sys.file_exists lemmas);
      (* the saved pool re-parses *)
      let pool = Synth.Lemma.load ~path:lemmas in
      Alcotest.(check bool) "saved pool is non-empty" true (pool <> []));
  (* bad arguments are refused *)
  check_code "bad --objects" 1 (run_cli [ "synth"; "--objects"; "turbo" ]);
  check_code "zero --registers" 1 (run_cli [ "synth"; "--registers"; "0" ]);
  check_code "one --procs" 1 (run_cli [ "synth"; "--procs"; "1" ]);
  (* a tiny node budget trips loudly: exit 3, truncated completeness *)
  let truncated =
    run_cli
      [ "synth"; "--registers"; "1"; "--depth"; "1"; "--seed"; "1";
        "--max-nodes"; "3" ]
  in
  check_code "node budget exits truncated" 3 truncated;
  Alcotest.(check bool) "truncated completeness printed" true
    (contains truncated.out "completeness: truncated (nodes)")

let suite =
  [
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "numeric flag validation" `Quick
      test_numeric_validation;
    Alcotest.test_case "synth subcommand" `Quick test_synth_subcommand;
    Alcotest.test_case "--state flat vs checkpointing" `Quick
      test_state_flat_checkpoint_conflict;
    Alcotest.test_case "SIGTERM dumps metrics" `Quick
      test_sigterm_dumps_metrics;
    Alcotest.test_case "--metrics and --progress" `Quick
      test_metrics_and_progress;
    Alcotest.test_case "fuzz finds and shrinks flawed" `Quick
      test_fuzz_subcommand;
    Alcotest.test_case "fuzz exit codes" `Quick test_fuzz_exit_codes;
    Alcotest.test_case "fuzz progress exit code" `Quick
      test_fuzz_progress_exit_code;
    Alcotest.test_case "node budget truncation" `Quick test_budget_truncation;
    Alcotest.test_case "deadline terminates in time" `Quick
      test_deadline_terminates;
    Alcotest.test_case "checkpoint/resume round trip" `Quick
      test_checkpoint_resume_round_trip;
  ]
