(* Standalone runner for the parallel-determinism suite.  Its dune stanza
   runs it under OCAMLRUNPARAM=b with RANDSYNC_JOBS=2 so CI exercises the
   multi-domain code paths with backtraces on. *)

let () =
  Alcotest.run "randsync-determinism"
    [
      ("par-determinism", Test_par_determinism.suite);
      ("obs-determinism", Test_obs_determinism.suite);
      ("flat-determinism", Test_flat_determinism.suite);
      ("synth-determinism", Test_synth_determinism.suite);
    ]
