let () =
  Alcotest.run "randsync"
    [
      ("value", Test_value.suite);
      ("rng", Test_rng.suite);
      ("objects", Test_objects.suite);
      ("objclass", Test_objclass.suite);
      ("algebra-props", Test_algebra_props.suite);
      ("hierarchy-objects", Test_hierarchy_objects.suite);
      ("crash", Test_crash.suite);
      ("tournament", Test_tournament.suite);
      ("mutex", Test_mutex.suite);
      ("misc-units", Test_misc_units.suite);
      ("ablation", Test_ablation.suite);
      ("cross-validation", Test_cross_validation.suite);
      ("proc", Test_proc.suite);
      ("trace", Test_trace.suite);
      ("trace-io", Test_trace_io.suite);
      ("checker", Test_checker.suite);
      ("sched", Test_sched.suite);
      ("run", Test_run.suite);
      ("consensus", Test_consensus.suite);
      ("mc", Test_mc.suite);
      ("dedup", Test_dedup.suite);
      ("attack", Test_attack.suite);
      ("general-attack", Test_general_attack.suite);
      ("certify", Test_certify.suite);
      ("attack-soundness", Test_attack_soundness.suite);
      ("interruptible", Test_interruptible.suite);
      ("stats", Test_stats.suite);
      ("bounds", Test_bounds.suite);
      ("valency-more", Test_valency_more.suite);
      ("enumerate", Test_enumerate.suite);
      ("linearize", Test_linearize.suite);
      ("objimpl", Test_objimpl.suite);
      ("experiments", Test_experiments.suite);
      ("par", Test_par.suite);
    ]
