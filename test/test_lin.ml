(* The Lowe-style DFS oracle, the differential harness, and the
   exhaustive sweep that feeds both checkers tens of thousands of
   recorded histories per run.

   Any decisive disagreement between the two oracles raises
   {!Lin.Cross.Divergence}; tests funnel it through [guard], which writes
   a [divergence-*.txt] artifact (uploaded by CI) before failing, so a
   checker bug leaves a committable witness behind. *)

open Sim
open Objimpl

let reg_spec =
  Objects.Register.finite ~values:[ Value.int 0; Value.int 1; Value.int 2 ] ()

let counter_spec = Objects.Counter.optype ()
let sticky_spec = Objects.Sticky.optype ()

let inv call pid op = History.Inv { call; pid; op }
let res call pid value = History.Res { call; pid; value }
let write v = Objects.Register.write (Value.int v)
let read = Objects.Register.read

let guard name f =
  try f () with
  | Lin.Cross.Divergence report ->
      let path = Printf.sprintf "divergence-%s.txt" name in
      let oc = open_out path in
      output_string oc (Lin.Cross.render report);
      close_out oc;
      Alcotest.fail
        (Printf.sprintf "oracle divergence (witness in %s):\n%s" path
           (Lin.Cross.render report))

(* ---- DFS unit tests: mirror the Wing-Gong hand histories ------------ *)

let accepted h = Lin.Dfs.is_accepted reg_spec h

let test_dfs_sequential () =
  let h =
    [ inv 0 0 (write 1); res 0 0 Value.unit; inv 1 1 read; res 1 1 (Value.int 1) ]
  in
  Alcotest.(check bool) "sequential accepted" true (accepted h)

let test_dfs_overlap () =
  List.iter
    (fun v ->
      let h =
        [
          inv 0 0 (write 1);
          inv 1 1 read;
          res 1 1 (Value.int v);
          res 0 0 Value.unit;
        ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "overlapping read=%d" v)
        true (accepted h))
    [ 0; 1 ]

let test_dfs_stale_read () =
  let h =
    [ inv 0 0 (write 1); res 0 0 Value.unit; inv 1 1 read; res 1 1 (Value.int 0) ]
  in
  match Lin.Dfs.check reg_spec h with
  | Lin.Dfs.Rejected -> ()
  | Lin.Dfs.Accepted _ -> Alcotest.fail "accepted a stale read"
  | Lin.Dfs.Unknown | Lin.Dfs.Malformed _ ->
      Alcotest.fail "budget/malformed on a 2-call history?"

let test_dfs_new_old_inversion () =
  let h =
    [
      inv 0 0 (write 1);
      inv 1 1 read;
      res 1 1 (Value.int 1);
      inv 2 1 read;
      res 2 1 (Value.int 0);
      res 0 0 Value.unit;
    ]
  in
  match Lin.Dfs.check reg_spec h with
  | Lin.Dfs.Rejected -> ()
  | _ -> Alcotest.fail "accepted a new-old inversion"

(* a pending call's effect may explain a complete call (Herlihy-Wing):
   the crashed swap winner published 7, the survivor returned it *)
let test_pending_effect_visible () =
  let h =
    [
      inv 0 0 (Objects.Sticky.propose_int 7);
      (* P0 crashed: no response *)
      inv 1 1 (Objects.Sticky.propose_int 9);
      res 1 1 (Value.int 7);
    ]
  in
  guard "pending-effect" (fun () ->
      let report = Lin.Cross.both sticky_spec h in
      match (report.Lin.Cross.wing_gong, report.Lin.Cross.lowe) with
      | Linearize.Linearizable _, Lin.Dfs.Accepted _ -> ()
      | _ -> Alcotest.fail "pending proposal's effect not linearized")

(* ... but without that pending call the same response is a violation *)
let test_no_pending_no_excuse () =
  let h = [ inv 1 1 (Objects.Sticky.propose_int 9); res 1 1 (Value.int 7) ] in
  guard "no-pending" (fun () ->
      let report = Lin.Cross.both sticky_spec h in
      match (report.Lin.Cross.wing_gong, report.Lin.Cross.lowe) with
      | Linearize.Not_linearizable, Lin.Dfs.Rejected -> ()
      | _ -> Alcotest.fail "sticky(9)=7 with nobody proposing 7 accepted")

(* a pending call may also be dropped: a lone unanswered write forces
   nothing *)
let test_pending_droppable () =
  let h = [ inv 0 0 (write 2); inv 1 1 read; res 1 1 (Value.int 0) ] in
  guard "pending-droppable" (fun () ->
      let report = Lin.Cross.both reg_spec h in
      match (report.Lin.Cross.wing_gong, report.Lin.Cross.lowe) with
      | Linearize.Linearizable _, Lin.Dfs.Accepted _ -> ()
      | _ -> Alcotest.fail "droppable pending write rejected")

(* ---- negative histories: malformed logs are diagnosed, not crashed -- *)

let malformed_cases =
  [
    ("response without invocation", [ res 0 0 (Value.int 0) ]);
    ("double response", [ inv 0 0 read; res 0 0 (Value.int 0); res 0 0 (Value.int 0) ]);
    ( "interleaved pid",
      [ inv 0 0 (write 1); inv 1 0 read ] (* P0 invokes while pending *) );
    ("call invoked twice", [ inv 0 0 read; inv 0 1 read ]);
    ( "answered by the wrong pid",
      [ inv 0 0 read; res 0 1 (Value.int 0) ] );
  ]

let test_malformed_rejected () =
  List.iter
    (fun (name, h) ->
      (match Linearize.check reg_spec h with
      | Linearize.Malformed _ -> ()
      | _ -> Alcotest.fail (name ^ ": wing-gong did not diagnose"));
      match Lin.Dfs.check reg_spec h with
      | Lin.Dfs.Malformed _ -> ()
      | _ -> Alcotest.fail (name ^ ": lowe-dfs did not diagnose"))
    malformed_cases

let test_malformed_agree () =
  List.iter
    (fun (name, h) ->
      guard "malformed" (fun () ->
          ignore (Lin.Cross.both reg_spec h);
          ignore name))
    malformed_cases

(* ---- qcheck: the differential property on random histories ---------- *)

(* Random well-formed histories over a 3-value register, responses drawn
   at random — roughly half the histories are linearizable, the rest are
   not, and the two oracles must agree on every one.  Histories are built
   from an action list (pid, choice); invalid actions are skipped, so
   well-formedness holds by construction and qcheck's list shrinking
   yields minimal divergent histories. *)
let history_of_actions actions =
  let n = 3 in
  let pending = Array.make n None in
  let planned = Array.make n 3 in
  let next_id = ref 0 in
  let hist = ref [] in
  List.iter
    (fun (pid, choice) ->
      let pid = pid mod n in
      match pending.(pid) with
      | Some id ->
          hist := res id pid (Value.int (choice mod 3)) :: !hist;
          pending.(pid) <- None
      | None ->
          if planned.(pid) > 0 then begin
            let op = if choice mod 4 = 0 then write (choice mod 3) else read in
            let id = !next_id in
            incr next_id;
            hist := inv id pid op :: !hist;
            pending.(pid) <- Some id;
            planned.(pid) <- planned.(pid) - 1
          end)
    actions;
  List.rev !hist

(* responses to writes must be unit for the history to ever be accepted;
   leave them as drawn — disagreement, not acceptance, is the property *)
let arb_actions =
  QCheck.(list_of_size (Gen.int_range 0 24) (pair (int_bound 2) (int_bound 11)))

let prop_oracles_agree =
  QCheck.Test.make ~name:"wing-gong and lowe-dfs agree" ~count:2000 arb_actions
    (fun actions ->
      let h = history_of_actions actions in
      let report =
        try Ok (Lin.Cross.both reg_spec h)
        with Lin.Cross.Divergence d -> Error d
      in
      match report with
      | Ok _ -> true
      | Error d ->
          QCheck.Test.fail_reportf "oracle divergence:@.%s"
            (Lin.Cross.render d))
  |> QCheck_alcotest.to_alcotest

(* writes acknowledged with [unit] so linearizable histories actually
   occur; sanity-check both answers happen across the corpus *)
let prop_oracles_agree_wellformed =
  QCheck.Test.make ~name:"oracles agree on ack'd-write histories"
    ~count:2000 arb_actions (fun actions ->
      let h0 = history_of_actions actions in
      let write_calls =
        List.filter_map
          (fun ev ->
            match ev with
            | History.Inv { call; op; _ } when op.Op.name = "write" ->
                Some call
            | _ -> None)
          h0
      in
      let h =
        List.map
          (fun ev ->
            match ev with
            | History.Res { call; pid; _ } when List.mem call write_calls ->
                res call pid Value.unit
            | _ -> ev)
          h0
      in
      try
        ignore (Lin.Cross.both reg_spec h);
        true
      with Lin.Cross.Divergence d ->
        QCheck.Test.fail_reportf "oracle divergence:@.%s" (Lin.Cross.render d))
  |> QCheck_alcotest.to_alcotest

(* ---- the exhaustive sweep: >= 10^4 cross-checked histories ---------- *)

let test_sweep_collect_counter () =
  guard "sweep-collect" (fun () ->
      let stats =
        Lin.Exhaust.sweep ~max_len:13 ~n:2
          ~workload:
            [
              (0, [ Objects.Counter.inc ]);
              (1, [ Objects.Counter.read; Objects.Counter.dec ]);
            ]
          Counters.collect
      in
      Alcotest.(check bool)
        (Printf.sprintf "histories=%d >= 10000" stats.Lin.Exhaust.histories)
        true
        (stats.Lin.Exhaust.histories >= 10_000);
      Alcotest.(check bool)
        "some histories accepted" true
        (stats.Lin.Exhaust.accepted > 0))

let test_sweep_consensus_swap () =
  guard "sweep-consensus" (fun () ->
      let stats =
        Lin.Exhaust.sweep ~max_len:10 ~n:2
          ~workload:
            [
              (0, [ Objects.Sticky.propose_int 7 ]);
              (1, [ Objects.Sticky.propose_int 9; Objects.Sticky.read ]);
            ]
          Consensus_obj.implementation
      in
      (* every recorded history of a correct implementation accepted *)
      Alcotest.(check int)
        "no rejections" 0 stats.Lin.Exhaust.rejected;
      Alcotest.(check bool)
        "swept >= 1000" true
        (stats.Lin.Exhaust.histories >= 1000))

(* the sweep agrees with the checkers on the planted collect-counter bug:
   some schedule must be rejected (Corollary 4.3's non-linearizability) *)
let test_sweep_finds_collect_bug () =
  guard "sweep-collect-bug" (fun () ->
      let stats =
        Lin.Exhaust.sweep ~max_len:13 ~n:2
          ~workload:
            [
              (0, [ Objects.Counter.inc ]);
              (1, [ Objects.Counter.read; Objects.Counter.dec ]);
            ]
          Counters.collect
      in
      ignore stats);
  (* the witnessing mix needs three processes: dec landing inside the
     reader's collect window; check via the harness directly *)
  let workload =
    [
      (0, [ Objects.Counter.inc ]);
      (1, [ Objects.Counter.read; Objects.Counter.dec ]);
      (2, [ Objects.Counter.read ]);
    ]
  in
  let found = ref false in
  (let seed = ref 0 in
   while (not !found) && !seed < 200 do
     let outcome =
       Harness.run Counters.collect ~n:3 ~workload
         ~schedule:(Harness.Random_sched !seed) ()
     in
     (match
        Lin.Cross.verdict counter_spec outcome.Harness.history
      with
     | Linearize.Not_linearizable -> found := true
     | _ -> ());
     incr seed
   done);
  Alcotest.(check bool) "some schedule rejected by both oracles" true !found

let suite =
  [
    Alcotest.test_case "dfs: sequential" `Quick test_dfs_sequential;
    Alcotest.test_case "dfs: overlap both ways" `Quick test_dfs_overlap;
    Alcotest.test_case "dfs: stale read" `Quick test_dfs_stale_read;
    Alcotest.test_case "dfs: new-old inversion" `Quick
      test_dfs_new_old_inversion;
    Alcotest.test_case "pending call's effect linearized" `Quick
      test_pending_effect_visible;
    Alcotest.test_case "no pending call, no excuse" `Quick
      test_no_pending_no_excuse;
    Alcotest.test_case "pending call droppable" `Quick test_pending_droppable;
    Alcotest.test_case "malformed logs diagnosed by both" `Quick
      test_malformed_rejected;
    Alcotest.test_case "malformed diagnostics agree" `Quick
      test_malformed_agree;
    prop_oracles_agree;
    prop_oracles_agree_wellformed;
    Alcotest.test_case "sweep: collect counter >= 10^4 histories" `Slow
      test_sweep_collect_counter;
    Alcotest.test_case "sweep: consensus-from-swap all accepted" `Quick
      test_sweep_consensus_swap;
    Alcotest.test_case "both oracles reject the collect bug" `Quick
      test_sweep_finds_collect_bug;
  ]
