let approx msg a b = if abs_float (a -. b) > 1e-9 then Alcotest.failf "%s: %f <> %f" msg a b

let test_summary_basics () =
  let s = Stats.Summary.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  approx "mean" 3.0 s.Stats.Summary.mean;
  approx "median" 3.0 s.Stats.Summary.median;
  approx "min" 1.0 s.Stats.Summary.min;
  approx "max" 5.0 s.Stats.Summary.max;
  approx "stddev" (sqrt 2.0) s.Stats.Summary.stddev;
  Alcotest.(check int) "n" 5 s.Stats.Summary.n

let test_summary_singleton () =
  let s = Stats.Summary.of_list [ 42.0 ] in
  approx "mean" 42.0 s.Stats.Summary.mean;
  approx "sd" 0.0 s.Stats.Summary.stddev;
  approx "p90" 42.0 s.Stats.Summary.p90

let test_summary_empty () =
  match Stats.Summary.of_list [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted empty sample"

let test_of_ints () =
  let s = Stats.Summary.of_ints [ 2; 4; 6 ] in
  approx "mean" 4.0 s.Stats.Summary.mean

let test_ci () =
  let s = Stats.Summary.of_list (List.init 100 (fun i -> float_of_int (i mod 10))) in
  let lo, hi = Stats.Summary.ci95 s in
  Alcotest.(check bool) "mean inside CI" true
    (lo <= s.Stats.Summary.mean && s.Stats.Summary.mean <= hi);
  Alcotest.(check bool) "CI nonempty" true (lo < hi)

let test_table_render () =
  let t = Stats.Table.create ~header:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "xxx"; "y" ];
  Stats.Table.add_row t [ "z"; "wwww" ];
  let s = Stats.Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header+sep+2 rows" 4 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  (* row order preserved *)
  Alcotest.(check bool) "xxx before z" true
    (match lines with _ :: _ :: r1 :: r2 :: _ ->
       Test_util.contains r1 "xxx" && Test_util.contains r2 "wwww"
     | _ -> false)

let test_table_arity () =
  let t = Stats.Table.create ~header:[ "a"; "b" ] in
  match Stats.Table.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted wrong arity"

let suite =
  [
    Alcotest.test_case "summary basics" `Quick test_summary_basics;
    Alcotest.test_case "summary singleton" `Quick test_summary_singleton;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "of_ints" `Quick test_of_ints;
    Alcotest.test_case "ci95" `Quick test_ci;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
  ]
