(* Differential suite for the sharded out-of-core engine ([Mc.Shard]),
   pinning its contract against the sequential referee (DESIGN.md §4j):

   - violation verdict and witness: identical to [Explore.search] for
     every registry protocol, dedup mode, engine, shard count and job
     count (violating drains delegate to the referee, so this holds
     field for field on flawed protocols);
   - under [`Off] on violation-free runs with non-binding caps: every
     result field identical (both engines count exactly the choice-tree
     nodes);
   - forced spills (tiny --table-mem-budget) change nothing about the
     verdict, and a cancelled drain leaves logs that reopen cleanly;
   - a steal storm (2 shards, 8 domains — six of them own nothing and
     can only steal) neither hangs (watchdog, mirroring [test_chaos])
     nor changes the verdict. *)

open Consensus

let shard_counts = [ 1; 2; 8 ]
let job_counts = [ 1; 2 ]

(* Same convention as test_chaos: a hang must become a loud exit, not a
   silent stuck test binary. *)
let with_watchdog ?(timeout = 120.) name f =
  let finished = Atomic.make false in
  let dog =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. timeout in
        let rec wait () =
          if Atomic.get finished then ()
          else if Unix.gettimeofday () > deadline then begin
            Printf.eprintf "shard watchdog: %S hung (> %.0fs); aborting\n%!"
              name timeout;
            exit 124
          end
          else begin
            Unix.sleepf 0.05;
            wait ()
          end
        in
        wait ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set finished true;
      Domain.join dog)
    f

let project_violation (r : _ Mc.Explore.result) =
  match r.Mc.Explore.violation with
  | None -> None
  | Some v ->
      Some
        ( (match v.Mc.Explore.kind with
          | `Inconsistent -> "inconsistent"
          | `Invalid -> "invalid"),
          Sim.Trace.to_string string_of_int v.Mc.Explore.trace )

let project_result (r : _ Mc.Explore.result) =
  ( project_violation r,
    r.Mc.Explore.visited,
    r.Mc.Explore.leaves,
    r.Mc.Explore.truncated,
    Robust.Budget.completeness_to_string r.Mc.Explore.completeness,
    r.Mc.Explore.max_depth_seen )

let find_exn name =
  match Registry.find name with
  | Some p -> p
  | None -> Alcotest.failf "protocol %S not in registry" name

let smallest_n (p : Protocol.t) =
  let rec go n =
    if n > 8 then invalid_arg p.name
    else if p.supports_n n then n
    else go (n + 1)
  in
  go 2

let fresh_dir =
  let ctr = ref 0 in
  fun tag ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "randsync-shard-%s-%d-%d" tag (Unix.getpid ()) !ctr)
    in
    d

(* ---- registry-wide parity ---- *)

let test_registry_parity () =
  with_watchdog ~timeout:600. "registry parity" @@ fun () ->
  List.iter
    (fun (p : Protocol.t) ->
      let n = smallest_n p in
      let inputs = List.init n (fun i -> i land 1) in
      let config () = Protocol.initial_config p ~inputs in
      List.iter
        (fun state ->
          List.iter
            (fun dedup ->
              let seq =
                Mc.Explore.search ~state ~dedup ~max_depth:6
                  ~max_states:500_000 ~inputs:[ 0; 1 ] (config ())
              in
              List.iter
                (fun shards ->
                  List.iter
                    (fun jobs ->
                      let sh =
                        Mc.Shard.search ~jobs ~shards ~state ~dedup
                          ~max_depth:6 ~max_states:500_000 ~inputs:[ 0; 1 ]
                          (config ())
                      in
                      let label =
                        Printf.sprintf "%s state=%s dedup=%s shards=%d jobs=%d"
                          p.name
                          (match state with `Flat -> "flat" | `Closure -> "closure")
                          (match dedup with
                          | `Off -> "off"
                          | `Exact -> "exact"
                          | `Symmetric -> "symmetric")
                          shards jobs
                      in
                      (* the violation verdict + witness are pinned for
                         every mode... *)
                      Alcotest.(check bool)
                        (label ^ ": violation parity")
                        true
                        (project_violation sh = project_violation seq);
                      (* ...and under `Off (no skips) every field is *)
                      if dedup = `Off then
                        Alcotest.(check bool)
                          (label ^ ": full parity under off")
                          true
                          (project_result sh = project_result seq))
                    job_counts)
                shard_counts)
            [ `Off; `Exact; `Symmetric ])
        [ `Flat; `Closure ])
    Registry.all

(* ---- flawed protocols: the referee makes violating runs identical ---- *)

let test_flawed_full_parity () =
  with_watchdog ~timeout:600. "flawed full parity" @@ fun () ->
  List.iter
    (fun (p : Protocol.t) ->
      let inputs = [ 0; 1 ] in
      let config () = Protocol.initial_config p ~inputs in
      List.iter
        (fun dedup ->
          let seq =
            Mc.Explore.search ~dedup ~max_depth:12 ~inputs:[ 0; 1 ] (config ())
          in
          Alcotest.(check bool) (p.name ^ ": is violating") true
            (seq.Mc.Explore.violation <> None);
          List.iter
            (fun shards ->
              List.iter
                (fun jobs ->
                  let sh =
                    Mc.Shard.search ~jobs ~shards ~dedup ~max_depth:12
                      ~inputs:[ 0; 1 ] (config ())
                  in
                  (* violating sharded runs return the referee's result
                     wholesale: every field matches, not just the witness *)
                  Alcotest.(check bool)
                    (Printf.sprintf "%s shards=%d jobs=%d: full parity" p.name
                       shards jobs)
                    true
                    (project_result sh = project_result seq))
                job_counts)
            shard_counts)
        [ `Off; `Exact; `Symmetric ])
    [
      Flawed.first_writer ~r:1;
      Flawed.unanimous ~style:Flawed.Rw ~r:1;
      Flawed.mixed ~r:2;
    ]

(* ---- forced spill: tiny mem budget, verdict unchanged ---- *)

let test_spill_parity () =
  with_watchdog "spill parity" @@ fun () ->
  let p = find_exn "counter-3" in
  let inputs = [ 0; 1; 0 ] in
  let config () = Protocol.initial_config p ~inputs in
  let seq =
    Mc.Explore.search ~dedup:`Symmetric ~max_depth:12 ~inputs:[ 0; 1 ]
      (config ())
  in
  let dir = fresh_dir "spill" in
  let obs = Obs.create () in
  let sh =
    Mc.Shard.search ~obs ~jobs:2 ~shards:4 ~dedup:`Symmetric ~max_depth:12
      ~table_dir:dir ~table_mem_budget:8_192 ~inputs:[ 0; 1 ] (config ())
  in
  let m = Obs.metrics obs in
  Alcotest.(check bool)
    "budget small enough to force spills" true
    (Obs.Metrics.counter m "mc/dtbl/spills" > 0);
  Alcotest.(check bool)
    "verdict survives the spills" true
    ( project_violation sh = project_violation seq
    && Robust.Budget.completeness_to_string sh.Mc.Explore.completeness
       = Robust.Budget.completeness_to_string seq.Mc.Explore.completeness );
  (* the logs a finished drain leaves behind reopen cleanly *)
  for k = 0 to 3 do
    let t =
      Mc.Dtbl.create ~path:(Filename.concat dir (Printf.sprintf "shard-%d.dtbl" k)) ()
    in
    let st = Mc.Dtbl.stats t in
    Alcotest.(check bool)
      (Printf.sprintf "shard %d log intact" k)
      true
      ((not st.Mc.Dtbl.lost_tail) && st.Mc.Dtbl.recovered > 0);
    Mc.Dtbl.close t
  done

(* ---- cancellation mid-drain: truncated verdict, recoverable logs ---- *)

let test_cancelled_leaves_clean_logs () =
  with_watchdog "cancelled drain" @@ fun () ->
  let p = find_exn "counter-3" in
  let config = Protocol.initial_config p ~inputs:[ 0; 1; 0 ] in
  let cancel = Robust.Cancel.create () in
  Robust.Cancel.set cancel;
  let budget = Robust.Budget.make ~cancel () in
  let dir = fresh_dir "cancel" in
  let r =
    Mc.Shard.search ~jobs:2 ~shards:2 ~dedup:`Exact ~max_depth:12 ~budget
      ~table_dir:dir ~table_mem_budget:8_192 ~inputs:[ 0; 1 ] config
  in
  Alcotest.(check string)
    "pre-set cancel token truncates" "truncated (cancelled)"
    (Robust.Budget.completeness_to_string r.Mc.Explore.completeness);
  (* even an immediately-abandoned drain closes its logs cleanly *)
  Array.iter
    (fun f ->
      let t = Mc.Dtbl.create ~path:(Filename.concat dir f) () in
      Alcotest.(check bool)
        (f ^ " reopens without tail loss")
        true
        (not (Mc.Dtbl.stats t).Mc.Dtbl.lost_tail);
      Mc.Dtbl.close t)
    (Sys.readdir dir)

(* ---- node budget: best-effort but sound ---- *)

let test_node_budget_trips () =
  with_watchdog "node budget" @@ fun () ->
  let p = find_exn "counter-3" in
  let config = Protocol.initial_config p ~inputs:[ 0; 1; 0 ] in
  let budget = Robust.Budget.make ~nodes:50 () in
  let r =
    Mc.Shard.search ~jobs:2 ~shards:4 ~max_depth:12 ~budget ~inputs:[ 0; 1 ]
      config
  in
  Alcotest.(check string)
    "node budget trips" "truncated (nodes)"
    (Robust.Budget.completeness_to_string r.Mc.Explore.completeness);
  Alcotest.(check bool)
    "visited stays near the allowance" true
    (r.Mc.Explore.visited <= 50)

(* ---- pool-default jobs: the path CI's RANDSYNC_JOBS matrix widens ---- *)

let test_env_default_jobs () =
  with_watchdog "env default jobs" @@ fun () ->
  let p = find_exn "counter-3" in
  let config () = Protocol.initial_config p ~inputs:[ 0; 1; 0 ] in
  let seq =
    Mc.Explore.search ~dedup:`Exact ~max_depth:10 ~inputs:[ 0; 1 ] (config ())
  in
  (* no ~jobs: Shard falls back to Par.default_jobs (), which reads
     RANDSYNC_JOBS — the verdict must not depend on what it says *)
  let sh =
    Mc.Shard.search ~shards:4 ~dedup:`Exact ~max_depth:10 ~inputs:[ 0; 1 ]
      (config ())
  in
  Alcotest.(check bool) "verdict parity at RANDSYNC_JOBS default" true
    (project_violation sh = project_violation seq)

(* ---- steal storm: 2 shards, 8 domains ---- *)

let test_steal_storm () =
  with_watchdog "steal storm" @@ fun () ->
  let p = find_exn "rw-3n" in
  let n = smallest_n p in
  let inputs = List.init n (fun i -> i land 1) in
  let config () = Protocol.initial_config p ~inputs in
  let seq =
    Mc.Explore.search ~dedup:`Exact ~max_depth:7 ~inputs:[ 0; 1 ] (config ())
  in
  for round = 1 to 3 do
    let obs = Obs.create () in
    let sh =
      Mc.Shard.search ~obs ~jobs:8 ~shards:2 ~dedup:`Exact ~max_depth:7
        ~inputs:[ 0; 1 ] (config ())
    in
    Alcotest.(check bool)
      (Printf.sprintf "storm round %d: verdict parity" round)
      true
      (project_violation sh = project_violation seq);
    (* six domains own no shard: any work they did was stolen *)
    ignore (Obs.Metrics.counter (Obs.metrics obs) "mc/shard/steals")
  done;
  (* and a violating storm still reports the canonical witness *)
  let flawed = Flawed.first_writer ~r:1 in
  let fconfig () = Protocol.initial_config flawed ~inputs:[ 0; 1 ] in
  let fseq =
    Mc.Explore.search ~dedup:`Exact ~max_depth:10 ~inputs:[ 0; 1 ] (fconfig ())
  in
  for _round = 1 to 3 do
    let fsh =
      Mc.Shard.search ~jobs:8 ~shards:2 ~dedup:`Exact ~max_depth:10
        ~inputs:[ 0; 1 ] (fconfig ())
    in
    Alcotest.(check bool) "storm witness parity" true
      (project_result fsh = project_result fseq)
  done

let suite =
  [
    Alcotest.test_case "registry verdict parity (shards x jobs x dedup x engine)"
      `Quick test_registry_parity;
    Alcotest.test_case "flawed protocols: full field parity" `Quick
      test_flawed_full_parity;
    Alcotest.test_case "forced spill keeps the verdict" `Quick
      test_spill_parity;
    Alcotest.test_case "cancelled drain leaves recoverable logs" `Quick
      test_cancelled_leaves_clean_logs;
    Alcotest.test_case "node budget trips" `Quick test_node_budget_trips;
    Alcotest.test_case "pool-default jobs (RANDSYNC_JOBS)" `Quick
      test_env_default_jobs;
    Alcotest.test_case "steal storm (2 shards, 8 domains)" `Quick
      test_steal_storm;
  ]
