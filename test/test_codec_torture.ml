(* Codec torture: truncated, interleaved and trailing-garbage input
   against every codec that crosses a process boundary — the serve wire
   protocol (and the JSON layer under it), the fuzz-schedule files and
   the mc checkpoint files.  The invariant is the same everywhere: a
   damaged artifact is a loud error, never a crash and never a silent
   partial parse.  Byte-prefix sweeps allow exactly one escape hatch:
   a prefix may parse iff it decodes to the original value (losing only
   the trailing newline is not corruption). *)

let contains = Test_util.contains

(* ---- wire frames ---- *)

let sample_job =
  {
    Serve.Job.spec =
      Serve.Job.Mc
        {
          (Serve.Job.mc_defaults ~protocol:"counter-3") with
          Serve.Job.mc_inputs = [ 0; 1 ];
          mc_depth = 12;
        };
    deadline = Some 30.;
  }

let sample_requests =
  [
    Serve.Wire.Ping;
    Serve.Wire.Submit { job = sample_job; detach = true };
    Serve.Wire.Submit
      {
        job =
          {
            Serve.Job.spec =
              Serve.Job.Fuzz (Serve.Job.fuzz_defaults ~scenario:"flawed");
            deadline = None;
          };
        detach = false;
      };
    Serve.Wire.Status { id = None };
    Serve.Wire.Status { id = Some 3 };
    Serve.Wire.Result { id = 7 };
    Serve.Wire.Cancel { id = 9 };
    Serve.Wire.Drain;
  ]

let sample_replies =
  [
    Serve.Wire.Pong;
    Serve.Wire.Accepted { id = 12 };
    Serve.Wire.Overloaded { queued = 64; limit = 64 };
    Serve.Wire.Draining;
    Serve.Wire.Progress { id = 1; nodes = 5000; steps = 123 };
    Serve.Wire.Verdict
      {
        id = 2;
        status = 3;
        lines = [ "visited=200 leaves=0"; "verdict: truncated (nodes)" ];
      };
    Serve.Wire.Jobs
      {
        draining = true;
        jobs =
          [
            { Serve.Wire.id = 1; label = "mc counter-3"; state = Serve.Wire.Running };
            { Serve.Wire.id = 2; label = "fuzz flawed"; state = Serve.Wire.Done 2 };
            { Serve.Wire.id = 3; label = "mc rw-3n"; state = Serve.Wire.Interrupted };
          ];
      };
    Serve.Wire.Cancelled { id = 4 };
    Serve.Wire.Error { message = "bad frame: trailing garbage" };
  ]

let test_wire_round_trip () =
  List.iter
    (fun req ->
      match Serve.Wire.decode_request (Serve.Wire.encode_request req) with
      | Ok req' ->
          Alcotest.(check bool) "request round-trips" true (req = req')
      | Error e -> Alcotest.failf "request failed to round-trip: %s" e)
    sample_requests;
  List.iter
    (fun reply ->
      match Serve.Wire.decode_reply (Serve.Wire.encode_reply reply) with
      | Ok reply' ->
          Alcotest.(check bool) "reply round-trips" true (reply = reply')
      | Error e -> Alcotest.failf "reply failed to round-trip: %s" e)
    sample_replies

(* every proper byte prefix of every frame must be refused — a JSON
   object cut anywhere never balances its braces *)
let test_wire_truncation_sweep () =
  let sweep kind decode frame =
    for n = 0 to String.length frame - 1 do
      match decode (String.sub frame 0 n) with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "%s prefix %d/%d of %s silently parsed" kind n
            (String.length frame) frame
    done
  in
  List.iter
    (fun r -> sweep "request" Serve.Wire.decode_request (Serve.Wire.encode_request r))
    sample_requests;
  List.iter
    (fun r -> sweep "reply" Serve.Wire.decode_reply (Serve.Wire.encode_reply r))
    sample_replies

let expect_wire_error name decoded =
  match decoded with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: silently parsed" name

let test_wire_trailing_garbage_and_interleaving () =
  let ping = Serve.Wire.encode_request Serve.Wire.Ping in
  let drain = Serve.Wire.encode_request Serve.Wire.Drain in
  expect_wire_error "trailing garbage"
    (Serve.Wire.decode_request (ping ^ " x"));
  expect_wire_error "trailing digits" (Serve.Wire.decode_request (ping ^ "42"));
  expect_wire_error "two frames interleaved on one line"
    (Serve.Wire.decode_request (ping ^ drain));
  expect_wire_error "two frames space-separated"
    (Serve.Wire.decode_request (ping ^ " " ^ drain));
  expect_wire_error "duplicate frame as suffix"
    (Serve.Wire.decode_reply
       (Serve.Wire.encode_reply Serve.Wire.Pong
       ^ Serve.Wire.encode_reply Serve.Wire.Pong))

let test_wire_version_and_shape () =
  expect_wire_error "future protocol version"
    (Serve.Wire.decode_request {|{"v":2,"type":"ping"}|});
  expect_wire_error "missing version"
    (Serve.Wire.decode_request {|{"type":"ping"}|});
  expect_wire_error "unknown frame type"
    (Serve.Wire.decode_request {|{"v":1,"type":"reboot"}|});
  expect_wire_error "request decoded as reply"
    (Serve.Wire.decode_reply {|{"v":1,"type":"ping"}|});
  expect_wire_error "id of the wrong type"
    (Serve.Wire.decode_request {|{"v":1,"type":"result","id":"7"}|});
  expect_wire_error "submit without a job"
    (Serve.Wire.decode_request {|{"v":1,"type":"submit","detach":true}|});
  expect_wire_error "not an object" (Serve.Wire.decode_request {|[1,2,3]|});
  expect_wire_error "empty line" (Serve.Wire.decode_request "")

(* the strict JSON layer under the wire: resource caps and the control
   characters a line-framed protocol must never let through *)
let test_json_strictness () =
  let expect_json_error name text =
    match Serve.Json.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: silently parsed" name
  in
  expect_json_error "overdeep nesting"
    (String.make 70 '[' ^ String.make 70 ']');
  (match Serve.Json.parse (String.make 10 '[' ^ String.make 10 ']') with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sane nesting refused: %s" e);
  expect_json_error "raw control char in string" "\"a\x01b\"";
  expect_json_error "unterminated string" {|{"a":"b|};
  expect_json_error "trailing comma" {|{"a":1,}|};
  expect_json_error "bare identifier" "verdict";
  expect_json_error "two documents" "{} {}"

(* \uXXXX decoding: paired surrogates become one UTF-8 code point, and a
   lone or misordered surrogate is a loud parse error (RFC 8259 §8.2) —
   never CESU-8 bytes smuggled through as string content *)
let test_json_surrogates () =
  let expect_json_error name text =
    match Serve.Json.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: silently parsed" name
  in
  let decoded name text =
    match Serve.Json.parse text with
    | Ok (Serve.Json.String s) -> s
    | Ok _ -> Alcotest.failf "%s: parsed to a non-string" name
    | Error e -> Alcotest.failf "%s: refused: %s" name e
  in
  (* U+1F600 as a pair -> the four UTF-8 bytes F0 9F 98 80 *)
  Alcotest.(check string) "paired surrogates decode astral"
    "\xf0\x9f\x98\x80"
    (decoded "emoji pair" {|"\ud83d\ude00"|});
  (* BMP escapes still single-unit *)
  Alcotest.(check string) "BMP escape" "\xe2\x82\xac"
    (decoded "euro sign" {|"\u20ac"|});
  expect_json_error "lone high surrogate" {|"\ud83d"|};
  expect_json_error "lone low surrogate" {|"\ude00"|};
  expect_json_error "reversed pair" {|"\ude00\ud83d"|};
  expect_json_error "high surrogate then non-escape" {|"\ud83dx"|};
  expect_json_error "high surrogate then non-u escape" {|"\ud83d\n"|};
  expect_json_error "high surrogate at end of string" {|"a\ud83d"|};
  (* printer/parser agreement: escape emits exactly what parse accepts,
     so any valid-UTF-8 payload round-trips through the ASCII wire form *)
  List.iter
    (fun payload ->
      let wire = Serve.Json.to_string (Serve.Json.String payload) in
      String.iter
        (fun ch ->
          if Char.code ch >= 0x80 then
            Alcotest.failf "wire form of %S is not pure ASCII: %s" payload
              wire)
        wire;
      match Serve.Json.parse wire with
      | Ok (Serve.Json.String s) ->
          Alcotest.(check string) "print/parse round-trip" payload s
      | Ok _ -> Alcotest.fail "round-trip changed the shape"
      | Error e -> Alcotest.failf "printer emitted unparseable %s: %s" wire e)
    [ "plain"; "caf\xc3\xa9"; "\xe2\x82\xac"; "\xf0\x9f\x98\x80";
      "mixed \xf0\x9f\x98\x80 tail" ]

(* ---- synth lemma files ---- *)

let lemma_error name text =
  match Synth.Lemma.of_text text with
  | exception Sim.Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: accepted damaged lemma file" name

let test_lemma_torture () =
  let pool =
    [
      {
        Synth.Lemma.source = "synth:rw:r1:d0|d1";
        inputs = [ 0; 1 ];
        schedule = [ `Step (0, None); `Step (1, Some 1); `Crash 0 ];
      };
      {
        Synth.Lemma.source = "synth:swap:r1:d0|d1";
        inputs = [ 0; 0; 1 ];
        schedule = [];
      };
    ]
  in
  let text = Synth.Lemma.to_text pool in
  Alcotest.(check bool) "round-trips" true (Synth.Lemma.of_text text = pool);
  (* byte-prefix sweep: a prefix parses iff it decodes the whole pool *)
  for n = 0 to String.length text - 1 do
    let prefix = String.sub text 0 n in
    match Synth.Lemma.of_text prefix with
    | parsed ->
        if parsed <> pool then
          Alcotest.failf "byte prefix %d silently parsed to a different pool"
            n
    | exception Sim.Trace_io.Parse_error _ -> ()
  done;
  lemma_error "garbage after end" (text ^ "L x inputs=0 sched=\n");
  lemma_error "count too large"
    (String.concat "\n"
       [ "randsync-lemmas v1"; "count 3";
         "L p inputs=0,1 sched=s0"; "end"; "" ]);
  lemma_error "count too small"
    (String.concat "\n"
       [ "randsync-lemmas v1"; "count 0";
         "L p inputs=0,1 sched=s0"; "end"; "" ]);
  lemma_error "bad entry" "randsync-lemmas v1\ncount 1\nL p inputs=0 sched=x9\nend\n";
  lemma_error "empty inputs" "randsync-lemmas v1\ncount 1\nL p inputs= sched=\nend\n";
  lemma_error "wrong magic" "randsync-schedule v1\ncount 0\nend\n";
  lemma_error "empty file" "";
  (* CRLF tolerance, like every other line codec *)
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "CRLF tolerated" true
    (Synth.Lemma.of_text crlf = pool)

(* ---- fuzz-schedule files ---- *)

let schedule_error name text =
  match Fuzz.Schedule.of_text text with
  | exception Sim.Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: accepted damaged schedule %S" name text

let test_schedule_torture () =
  let sched = [ `Step (0, None); `Step (1, Some 1); `Crash 2; `Step (0, Some 0) ] in
  let text = Fuzz.Schedule.to_text sched in
  (* byte-prefix sweep: parse iff the result is the original schedule *)
  for n = 0 to String.length text - 1 do
    match Fuzz.Schedule.of_text (String.sub text 0 n) with
    | exception Sim.Trace_io.Parse_error _ -> ()
    | sched' ->
        if sched' <> sched then
          Alcotest.failf "schedule prefix %d/%d parsed to a different witness"
            n (String.length text)
  done;
  (* dropping whole tail lines is exactly the v1 silent-truncation hole
     the count line closes *)
  let lines = String.split_on_char '\n' (String.trim text) in
  List.iteri
    (fun k _ ->
      if k >= 2 && k < List.length lines then
        schedule_error
          (Printf.sprintf "first %d lines only" k)
          (String.concat "\n" (List.filteri (fun i _ -> i < k) lines) ^ "\n"))
    lines;
  (* trailing garbage: extra entries beyond the declared count, and
     outright junk *)
  schedule_error "padded with an extra entry" (text ^ "S 0\n");
  schedule_error "padded with junk" (text ^ "not a schedule line\n");
  (* interleaved: two files concatenated *)
  schedule_error "two schedules concatenated" (text ^ text);
  (* count line damage *)
  schedule_error "count line missing"
    (Test_util.replace_first ~sub:"len 4\n" ~by:"" text);
  schedule_error "count not a number"
    (Test_util.replace_first ~sub:"len 4" ~by:"len four" text);
  schedule_error "count mismatch"
    (Test_util.replace_first ~sub:"len 4" ~by:"len 3" text)

let test_schedule_v1_still_reads () =
  Alcotest.(check bool) "legacy v1 file reads" true
    (Fuzz.Schedule.of_text "fuzz-schedule v1\nS 0\nS 1 1\nX 2\n"
    = [ `Step (0, None); `Step (1, Some 1); `Crash 2 ]);
  (* ... but new files are written v2, with the count line *)
  Alcotest.(check bool) "writes carry the count" true
    (contains (Fuzz.Schedule.to_text [ `Crash 0 ]) "fuzz-schedule v2\nlen 1\n")

(* ---- mc checkpoints ---- *)

let ckpt_error name text =
  match Mc.Checkpoint.of_text text with
  | exception Sim.Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: accepted damaged checkpoint" name

let test_checkpoint_torture () =
  let state =
    {
      Mc.Checkpoint.visited = 7900;
      leaves = 38;
      table_hits = 0;
      max_depth_seen = 17;
      trunc = 4;
      reason = Some `Depth;
      (* the multi-digit outcome is deliberate: cutting "1:12" to "1:1"
         leaves a plausible element that only the end marker catches *)
      path = [ (1, 0); (0, 2); (1, 12) ];
    }
  in
  let scenario = "mc protocol=rw-3n inputs=0,1 depth=20 max-states=10 dedup=off" in
  let text = Mc.Checkpoint.to_text ~scenario state in
  (* byte-prefix sweep with the same parse-iff-identical escape hatch *)
  for n = 0 to String.length text - 1 do
    match Mc.Checkpoint.of_text (String.sub text 0 n) with
    | exception Sim.Trace_io.Parse_error _ -> ()
    | scenario', state' ->
        if scenario' <> scenario || state' <> state then
          Alcotest.failf
            "checkpoint prefix %d/%d parsed to a different cursor" n
            (String.length text)
  done;
  (* the v1 hole: a path cut at an element boundary used to parse as a
     shorter path and resume from the wrong frontier *)
  ckpt_error "path cut at an element boundary"
    (Test_util.replace_first ~sub:" 1:12" ~by:"" text);
  ckpt_error "path padded with an extra element"
    (Test_util.replace_first ~sub:" 1:12" ~by:" 1:12 0:0" text);
  ckpt_error "path count damaged"
    (Test_util.replace_first ~sub:"path 3" ~by:"path three" text);
  (* interleaving and garbage *)
  ckpt_error "two checkpoints concatenated" (text ^ text);
  ckpt_error "trailing garbage line" (text ^ "coda\n");
  ckpt_error "binary garbage" "\x00\x01\x02randsync-checkpoint v2\n"

let test_checkpoint_v1_still_reads () =
  let v1_text =
    String.concat "\n"
      [
        "randsync-checkpoint v1";
        "scenario sc";
        "visited 5";
        "leaves 2";
        "table_hits 0";
        "max_depth_seen 3";
        "trunc 1";
        "reason nodes";
        "path 1:0 0:2";
        "";
      ]
  in
  let scenario, state = Mc.Checkpoint.of_text v1_text in
  Alcotest.(check string) "legacy scenario" "sc" scenario;
  Alcotest.(check int) "legacy visited" 5 state.Mc.Checkpoint.visited;
  Alcotest.(check bool) "legacy path" true
    (state.Mc.Checkpoint.path = [ (1, 0); (0, 2) ]);
  (* new files are written v2, with the path count *)
  let text = Mc.Checkpoint.to_text ~scenario:"sc" state in
  Alcotest.(check bool) "writes carry the path count" true
    (contains text "randsync-checkpoint v2" && contains text "path 2 1:0 0:2")

(* ---- dtbl v1 records ---- *)

let dtbl_error name line =
  match Mc.Dtbl.record_of_line line with
  | exception Sim.Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: accepted damaged dtbl record %S" name line

let dtbl_sample_keys =
  [
    Mc.Dtbl.Skey.make ~fps:[||] ~objs:[||];
    Mc.Dtbl.Skey.make ~fps:[| 0 |] ~objs:[| Sim.Value.Unit |];
    Mc.Dtbl.Skey.make
      ~fps:[| min_int; -3; 0; 17; max_int |]
      ~objs:
        [|
          Sim.Value.Bool false;
          Sim.Value.Int (-12);
          Sim.Value.Sym "w";
          Sim.Value.Pair (Sim.Value.Int 1, Sim.Value.Opt None);
          Sim.Value.Opt (Some (Sim.Value.List [ Sim.Value.Int 2; Sim.Value.Unit ]));
          Sim.Value.List [];
        |];
  ]

let test_dtbl_record_torture () =
  List.iter
    (fun key ->
      List.iter
        (fun meta ->
          let line = Mc.Dtbl.record_to_line key meta in
          (* byte-prefix sweep: a prefix parses only if it decodes to the
             original record — the sentinel makes every strict prefix a
             loud error, including cuts that land on token boundaries *)
          for n = 0 to String.length line - 1 do
            match Mc.Dtbl.record_of_line (String.sub line 0 n) with
            | exception Sim.Trace_io.Parse_error _ -> ()
            | key', meta' ->
                if not (Mc.Dtbl.Skey.equal key key' && meta = meta') then
                  Alcotest.failf
                    "dtbl prefix %d/%d parsed to a different record" n
                    (String.length line)
          done;
          (* the hash check: any payload change that survives framing is
             still refused *)
          let key', meta' = Mc.Dtbl.record_of_line line in
          Alcotest.(check bool) "record round-trips" true
            (Mc.Dtbl.Skey.equal key key' && meta = meta');
          dtbl_error "trailing garbage" (line ^ " x");
          dtbl_error "two records interleaved" (line ^ " " ^ line);
          dtbl_error "sentinel dropped"
            (Test_util.replace_first ~sub:" ;" ~by:"" line))
        [ 2; ((30 + 1) lsl 2) lor 1 ])
    dtbl_sample_keys;
  (* a hash-field flip is caught by the recomputation, not the framing *)
  let line =
    Mc.Dtbl.record_to_line
      (Mc.Dtbl.Skey.make ~fps:[| 5 |] ~objs:[| Sim.Value.Int 9 |])
      4
  in
  dtbl_error "payload flip breaks the hash check"
    (Test_util.replace_first ~sub:"i9" ~by:"i8" line);
  dtbl_error "empty line" "";
  dtbl_error "header as record" Mc.Dtbl.header

let suite =
  [
    Alcotest.test_case "wire frames round-trip" `Quick test_wire_round_trip;
    Alcotest.test_case "wire truncation sweep" `Quick
      test_wire_truncation_sweep;
    Alcotest.test_case "wire trailing garbage + interleaving" `Quick
      test_wire_trailing_garbage_and_interleaving;
    Alcotest.test_case "wire version and shape checks" `Quick
      test_wire_version_and_shape;
    Alcotest.test_case "json strictness" `Quick test_json_strictness;
    Alcotest.test_case "json surrogate pairs" `Quick test_json_surrogates;
    Alcotest.test_case "lemma file torture" `Quick test_lemma_torture;
    Alcotest.test_case "schedule torture" `Quick test_schedule_torture;
    Alcotest.test_case "schedule v1 still reads" `Quick
      test_schedule_v1_still_reads;
    Alcotest.test_case "checkpoint torture" `Quick test_checkpoint_torture;
    Alcotest.test_case "checkpoint v1 still reads" `Quick
      test_checkpoint_v1_still_reads;
    Alcotest.test_case "dtbl v1 record torture" `Quick
      test_dtbl_record_torture;
  ]
