open Sim

let ev_apply pid obj = Event.Applied { pid; obj; op = Op.make "read"; resp = Value.unit }
let ev_coin pid = Event.Coin { pid; n = 2; outcome = 1 }
let ev_decide pid v = Event.Decided { pid; value = v }

let sample : int Trace.t =
  Trace.of_events
    [ ev_apply 0 0; ev_coin 1; ev_apply 1 1; ev_decide 1 7; ev_apply 0 1 ]

let test_steps () =
  (* Decided events are not steps *)
  Alcotest.(check int) "steps" 4 (Trace.steps sample);
  Alcotest.(check int) "length" 5 (Trace.length sample)

let test_decompositions () =
  Alcotest.(check int) "applied ops" 3 (List.length (Trace.applied_ops sample));
  Alcotest.(check (list (pair int int))) "decisions" [ (1, 7) ] (Trace.decisions sample);
  Alcotest.(check int) "coins" 1 (List.length (Trace.coins sample));
  Alcotest.(check (list int)) "pids" [ 0; 1 ] (Trace.pids sample)

let test_by_pid () =
  Alcotest.(check int) "P0 events" 2 (List.length (Trace.by_pid sample 0));
  Alcotest.(check int) "P1 events" 3 (List.length (Trace.by_pid sample 1))

let test_append_concat () =
  let t2 = Trace.append sample sample in
  Alcotest.(check int) "append" 10 (Trace.length t2);
  Alcotest.(check int) "concat" 15 (Trace.length (Trace.concat [ sample; sample; sample ]))

let test_to_string () =
  let s = Trace.to_string string_of_int sample in
  Alcotest.(check bool) "mentions decide" true
    (Test_util.contains s "decide 7")

let suite =
  [
    Alcotest.test_case "steps vs length" `Quick test_steps;
    Alcotest.test_case "decompositions" `Quick test_decompositions;
    Alcotest.test_case "by_pid" `Quick test_by_pid;
    Alcotest.test_case "append/concat" `Quick test_append_concat;
    Alcotest.test_case "to_string" `Quick test_to_string;
  ]
