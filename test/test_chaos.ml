(* Chaos / fault-injection for the [Par] pool: raising tasks, slow
   stragglers, cancellation before and during a batch, shutdown races and
   create/shutdown churn — every case at 2 and at 8 domains.

   The two invariants under attack are exactly the pool's contract:
   no hangs (every barrier fires, every shutdown returns) and
   lowest-index exception (a raising batch surfaces the same exception a
   sequential left-to-right run would).  Each case runs under a watchdog
   domain: a hang is precisely the bug this suite exists to catch, and a
   hung alcotest reports nothing — so the watchdog turns it into a loud
   nonzero exit instead. *)

exception Boom of int

let job_counts = [ 2; 8 ]

(* If [f] does not finish within [timeout] seconds, kill the whole test
   binary with exit 124 (the `timeout(1)` convention). *)
let with_watchdog ?(timeout = 60.) name f =
  let finished = Atomic.make false in
  let dog =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. timeout in
        let rec wait () =
          if Atomic.get finished then ()
          else if Unix.gettimeofday () > deadline then begin
            Printf.eprintf "chaos watchdog: %S hung (> %.0fs); aborting\n%!"
              name timeout;
            exit 124
          end
          else begin
            Unix.sleepf 0.05;
            wait ()
          end
        in
        wait ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set finished true;
      Domain.join dog)
    f

let for_each_jobs name f =
  List.iter
    (fun jobs ->
      with_watchdog
        (Printf.sprintf "%s (jobs=%d)" name jobs)
        (fun () -> f jobs))
    job_counts

(* ---- raising tasks ---- *)

let test_lowest_index_exception () =
  for_each_jobs "lowest-index exception" @@ fun jobs ->
  Par.with_pool ~jobs @@ fun pool ->
  for round = 1 to 20 do
    (* several tasks raise; the survivor must be the lowest index, as in a
       sequential left-to-right run *)
    (match
       Par.map ~pool
         (fun i -> if i mod 7 = 3 then raise (Boom i) else i)
         (List.init 100 Fun.id)
     with
    | _ -> Alcotest.failf "round %d: exception swallowed" round
    | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "round %d: lowest index" round)
          3 i);
    (* the pool survives the raising batch and still computes *)
    Alcotest.(check (list int))
      (Printf.sprintf "round %d: pool survives" round)
      [ 0; 2; 4 ]
      (Par.map ~pool (fun i -> 2 * i) [ 0; 1; 2 ])
  done

let test_every_task_raises () =
  for_each_jobs "every task raises" @@ fun jobs ->
  Par.with_pool ~jobs @@ fun pool ->
  match Par.map ~pool (fun i -> raise (Boom i)) (List.init 64 Fun.id) with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom 0 -> ()
  | exception Boom i -> Alcotest.failf "surfaced task %d, not 0" i

(* ---- stragglers ---- *)

let test_stragglers_preserve_order () =
  for_each_jobs "stragglers" @@ fun jobs ->
  Par.with_pool ~jobs @@ fun pool ->
  (* the earliest tasks are the slowest: late fast tasks finish first,
     order must come from slot indexing, not completion order *)
  let xs = List.init 40 Fun.id in
  let result =
    Par.map ~pool
      (fun i ->
        if i < 4 then Unix.sleepf 0.03;
        i * i)
      xs
  in
  Alcotest.(check (list int)) "order preserved" (List.map (fun i -> i * i) xs)
    result

(* ---- cancellation ---- *)

let test_cancel_preset_skips_everything () =
  for_each_jobs "pre-set cancel" @@ fun jobs ->
  Par.with_pool ~jobs @@ fun pool ->
  let cancel = Robust.Cancel.create () in
  Robust.Cancel.set cancel;
  let ran = Atomic.make 0 in
  let result =
    Par.map_cancellable ~pool ~cancel
      (fun i ->
        Atomic.incr ran;
        i)
      (List.init 500 Fun.id)
  in
  Alcotest.(check int) "no task ran" 0 (Atomic.get ran);
  Alcotest.(check bool) "all slots None" true
    (List.for_all (fun s -> s = None) result);
  Alcotest.(check int) "length preserved" 500 (List.length result)

let test_cancel_mid_batch () =
  for_each_jobs "mid-batch cancel" @@ fun jobs ->
  Par.with_pool ~jobs @@ fun pool ->
  let n = 20_000 in
  let cancel = Robust.Cancel.create () in
  let result =
    Par.map_cancellable ~pool ~cancel
      (fun i ->
        (* the first task fires the kill switch from inside the batch *)
        if i = 0 then Robust.Cancel.set cancel;
        i)
      (List.init n Fun.id)
  in
  (* which tasks ran is scheduling-dependent; what is guaranteed: the
     barrier fired (we are here), every slot is present, ran slots carry
     their own value, and the task that set the token did run *)
  Alcotest.(check int) "length preserved" n (List.length result);
  List.iteri
    (fun i -> function
      | Some v -> Alcotest.(check int) "slot value" i v
      | None -> ())
    result;
  Alcotest.(check bool) "task 0 ran" true (List.hd result = Some 0);
  (* a cancelled batch must not poison the next one: fresh token, all run *)
  let fresh = Robust.Cancel.create () in
  let again = Par.map_cancellable ~pool ~cancel:fresh Fun.id [ 1; 2; 3 ] in
  Alcotest.(check bool) "next batch unaffected" true
    (again = [ Some 1; Some 2; Some 3 ])

let test_cancel_unset_equals_map () =
  for_each_jobs "unset cancel token" @@ fun jobs ->
  Par.with_pool ~jobs @@ fun pool ->
  let xs = List.init 200 Fun.id in
  Alcotest.(check bool) "map_cancellable = map under unset token" true
    (Par.map_cancellable ~pool ~cancel:(Robust.Cancel.create ()) succ xs
    = List.map (fun x -> Some (succ x)) xs)

(* ---- shutdown races ---- *)

let test_concurrent_double_shutdown () =
  for_each_jobs "double shutdown" @@ fun jobs ->
  let pool = Par.Pool.create ~jobs () in
  ignore (Par.map ~pool succ [ 1; 2; 3 ]);
  let d1 = Domain.spawn (fun () -> Par.Pool.shutdown pool) in
  let d2 = Domain.spawn (fun () -> Par.Pool.shutdown pool) in
  Domain.join d1;
  Domain.join d2;
  (* third call from the test domain: still returns *)
  Par.Pool.shutdown pool;
  (* a shut-down pool degrades to sequential execution, it never wedges a
     late caller *)
  Alcotest.(check (list int)) "degrades to sequential" [ 2; 3; 4 ]
    (Par.map ~pool succ [ 1; 2; 3 ])

let test_shutdown_during_batch () =
  for_each_jobs "shutdown during batch" @@ fun jobs ->
  let pool = Par.Pool.create ~jobs () in
  let shutter =
    Domain.spawn (fun () ->
        (* land in the middle of the in-flight batch below *)
        Unix.sleepf 0.02;
        Par.Pool.shutdown pool)
  in
  let xs = List.init 64 Fun.id in
  let result =
    Par.map ~pool
      (fun i ->
        Unix.sleepf 0.002;
        i + 1)
      xs
  in
  Domain.join shutter;
  (* the in-flight batch completes in full; later batches run degraded *)
  Alcotest.(check (list int)) "batch completed" (List.map succ xs) result;
  Alcotest.(check (list int)) "later batch sequential" [ 10 ]
    (Par.map ~pool (fun i -> 10 * i) [ 1 ])

let test_create_shutdown_churn () =
  for_each_jobs "create/shutdown churn" @@ fun jobs ->
  for seed = 1 to 15 do
    let result =
      Par.with_pool ~jobs (fun pool ->
          Par.map ~pool (fun i -> (seed * i) mod 97) (List.init 32 Fun.id))
    in
    Alcotest.(check (list int))
      (Printf.sprintf "churn round %d" seed)
      (List.init 32 (fun i -> (seed * i) mod 97))
      result
  done

(* ---- governed search under chaos ---- *)

let test_search_par_cancelled_mid_run () =
  for_each_jobs "search_par cancelled" @@ fun jobs ->
  Par.with_pool ~jobs @@ fun pool ->
  (* a pre-cancelled token: the search must return (no hang), carry a
     cancelled verdict, and never claim exhaustiveness *)
  let cancel = Robust.Cancel.create () in
  Robust.Cancel.set cancel;
  let config =
    Consensus.Protocol.initial_config Consensus.Counter_consensus.protocol
      ~inputs:[ 0; 1; 1 ]
  in
  let r =
    Mc.Explore.search_par ~pool
      ~budget:(Robust.Budget.make ~cancel ())
      ~max_depth:20 ~inputs:[ 0; 1 ] config
  in
  Alcotest.(check bool) "not exhaustive" true r.Mc.Explore.truncated;
  Alcotest.(check string) "cancelled verdict" "truncated (cancelled)"
    (Robust.Budget.completeness_to_string r.Mc.Explore.completeness);
  Alcotest.(check bool) "no spurious violation" true
    (r.Mc.Explore.violation = None)

let suite =
  [
    Alcotest.test_case "lowest-index exception, pool survives" `Quick
      test_lowest_index_exception;
    Alcotest.test_case "every task raises" `Quick test_every_task_raises;
    Alcotest.test_case "stragglers preserve order" `Quick
      test_stragglers_preserve_order;
    Alcotest.test_case "pre-set cancel skips everything" `Quick
      test_cancel_preset_skips_everything;
    Alcotest.test_case "cancel mid-batch" `Quick test_cancel_mid_batch;
    Alcotest.test_case "unset cancel = plain map" `Quick
      test_cancel_unset_equals_map;
    Alcotest.test_case "concurrent double shutdown" `Quick
      test_concurrent_double_shutdown;
    Alcotest.test_case "shutdown during in-flight batch" `Quick
      test_shutdown_during_batch;
    Alcotest.test_case "create/shutdown churn" `Quick
      test_create_shutdown_churn;
    Alcotest.test_case "search_par cancelled mid-run" `Quick
      test_search_par_cancelled_mid_run;
  ]
