(* Property tests for the Par domain-pool subsystem: ordering
   preservation, exception propagation (a raising task must not hang the
   pool, and the surfaced exception must be the sequential one), edge
   cases, and deterministic per-task seeding. *)

let with_pools jobs_list f =
  List.iter
    (fun jobs -> Par.with_pool ~jobs (fun pool -> f ~jobs (Some pool)))
    jobs_list;
  f ~jobs:0 None (* jobs:0 marks the no-pool sequential baseline *)

let test_map_matches_list_map () =
  let prop =
    QCheck.Test.make ~name:"Par.map = List.map under any pool" ~count:30
      QCheck.(pair (small_list int) (int_range 1 8))
      (fun (xs, jobs) ->
        let f x = (x * 31) + 7 in
        let expected = List.map f xs in
        Par.with_pool ~jobs (fun pool -> Par.map ~pool f xs = expected))
  in
  QCheck.Test.check_exn prop

let test_mapi_indices () =
  let xs = List.init 100 (fun i -> 100 - i) in
  with_pools [ 1; 2; 8 ] (fun ~jobs:_ pool ->
      let got = Par.mapi ?pool (fun i x -> (i, x)) xs in
      Alcotest.(check bool)
        "indices in order" true
        (got = List.mapi (fun i x -> (i, x)) xs))

let test_map_reduce_ordering () =
  (* string concatenation is not commutative: any reordering of the
     reduce shows up immediately *)
  let xs = List.init 50 string_of_int in
  let expected = String.concat "" xs in
  with_pools [ 1; 2; 3; 8 ] (fun ~jobs:_ pool ->
      let got =
        Par.map_reduce ?pool ~map:Fun.id ~reduce:( ^ ) ~init:"" xs
      in
      Alcotest.(check string) "ordered reduce" expected got)

let test_empty_and_singleton () =
  with_pools [ 1; 2; 8 ] (fun ~jobs:_ pool ->
      Alcotest.(check (list int)) "empty" [] (Par.map ?pool (fun x -> x) []);
      Alcotest.(check (list int))
        "singleton" [ 42 ]
        (Par.map ?pool (fun x -> x * 42) [ 1 ]);
      Alcotest.(check int)
        "empty reduce" 9
        (Par.map_reduce ?pool ~map:Fun.id ~reduce:( + ) ~init:9 []))

exception Boom of int

let test_exception_propagation () =
  (* several tasks raise; the lowest-indexed one must surface — the same
     exception a sequential left-to-right run reports *)
  with_pools [ 1; 2; 8 ] (fun ~jobs:_ pool ->
      match
        Par.map ?pool
          (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
          (List.init 30 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 2 i)

let test_pool_survives_exceptions () =
  (* a raising batch must not wedge the pool: the next batch still runs *)
  Par.with_pool ~jobs:4 (fun pool ->
      (try
         ignore
           (Par.map ~pool (fun i -> if i > 5 then failwith "boom" else i)
              (List.init 64 Fun.id))
       with Failure _ -> ());
      let xs = List.init 64 Fun.id in
      Alcotest.(check (list int))
        "pool alive after exception" (List.map succ xs)
        (Par.map ~pool succ xs))

let test_pool_for_runs_all_tasks () =
  Par.with_pool ~jobs:4 (fun pool ->
      let hits = Atomic.make 0 in
      Par.Pool.for_ pool ~n:1000 (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "every task ran once" 1000 (Atomic.get hits))

let test_shutdown_degrades_gracefully () =
  let pool = Par.Pool.create ~jobs:4 () in
  Par.Pool.shutdown pool;
  (* a shut-down pool must not hang or crash late callers *)
  let out = ref 0 in
  Par.Pool.for_ pool ~n:10 (fun i -> if i = 9 then out := 9);
  Alcotest.(check int) "sequential fallback ran" 9 !out;
  Par.Pool.shutdown pool

let test_map_seeded_deterministic () =
  let draws rng _x = List.init 5 (fun _ -> Sim.Rng.int rng 1_000_000) in
  let xs = List.init 40 Fun.id in
  let reference = Par.map_seeded ~seed:123 draws xs in
  with_pools [ 1; 2; 8 ] (fun ~jobs:_ pool ->
      Alcotest.(check bool)
        "seeded streams independent of pool" true
        (Par.map_seeded ?pool ~seed:123 draws xs = reference));
  (* a different root seed must give different streams *)
  Alcotest.(check bool)
    "seed matters" true
    (Par.map_seeded ~seed:124 draws xs <> reference)

let test_default_jobs_positive () =
  Alcotest.(check bool) "default jobs >= 1" true (Par.default_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "map = List.map (qcheck)" `Quick test_map_matches_list_map;
    Alcotest.test_case "mapi preserves indices" `Quick test_mapi_indices;
    Alcotest.test_case "map_reduce order-sensitive reduce" `Quick
      test_map_reduce_ordering;
    Alcotest.test_case "empty / singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "exception: lowest index wins" `Quick
      test_exception_propagation;
    Alcotest.test_case "pool survives raising batch" `Quick
      test_pool_survives_exceptions;
    Alcotest.test_case "for_ runs every task" `Quick test_pool_for_runs_all_tasks;
    Alcotest.test_case "shutdown degrades to sequential" `Quick
      test_shutdown_degrades_gracefully;
    Alcotest.test_case "map_seeded pool-independent" `Quick
      test_map_seeded_deterministic;
    Alcotest.test_case "default_jobs sane" `Quick test_default_jobs_positive;
  ]
