(* No-behavior-change pins for the adversary allocation sweep: the
   random / starving / contention schedulers were rewritten from
   list-building [enabled_pids] selection to counting + rank selection
   (one [Rng.int] per step over the same range), so the realized
   schedules must be byte-for-byte what the list-based code produced.
   The golden strings below were recorded against that original code. *)

open Consensus

let realized sched =
  let config =
    Protocol.initial_config Counter_consensus.protocol ~inputs:[ 0; 1; 0 ]
  in
  let r = Sim.Run.exec ~max_steps:200 sched config in
  let buf = Buffer.create 200 in
  List.iter
    (fun (e : int Sim.Event.t) ->
      match e with
      | Sim.Event.Applied { pid; _ } | Sim.Event.Coin { pid; _ } ->
          Buffer.add_string buf (string_of_int pid)
      | _ -> ())
    (Sim.Trace.events r.Sim.Run.trace);
  (r.Sim.Run.steps, Buffer.contents buf)

let golden =
  [
    ( "random",
      (fun seed -> Sim.Sched.random ~seed),
      [
        ( 1,
          165,
          "200211110211221210201102012001112111002012102202121012021202101022011112202010121010102201200110002211111211011211201021222220210112220101011112212000121112020202101"
        );
        (2, 55, "2110011212020010122112120111020020011102122000222021111");
        ( 3,
          123,
          "111200021002020210101022201111012201012002111102211211202222212102002102210122020011012100021122211120001011201202112022112"
        );
      ] );
    ( "starving",
      (fun seed -> Sim.Sched.starving ~victim:0 ~seed),
      [
        (1, 52, "1222111121221221212122122212112111112222112222120000");
        ( 2,
          131,
          "22211222211212212111112211212121121222121221221122112111121112221121211111211111112221112112222211211111221221122221211221212220000"
        );
        (3, 60, "111222122121212211221111111111222111212112211222122222110000");
      ] );
    ( "contention",
      (fun seed -> Sim.Sched.contention ~seed),
      [
        (1, 60, "022210100212122211111111111111111111111111111111110000022222");
        ( 2,
          120,
          "222001112102022211111111111111100000111110000000000111112222200000111112222222222111111111111111111111111111112222200000"
        );
        (3, 64, "0002000122020111222221111111111111111111111111111100000000022222");
      ] );
  ]

let test_adversaries_golden () =
  List.iter
    (fun (name, mk, cases) ->
      List.iter
        (fun (seed, steps, pids) ->
          let s, p = realized (mk seed) in
          Alcotest.(check (pair int string))
            (Printf.sprintf "%s seed=%d" name seed)
            (steps, pids) (s, p))
        cases)
    golden

(* [Config.poised_at] / [Lowerbound.Triviality.poised_at] against their
   list-filter specifications, over configurations advanced to random
   depths. *)
let test_poised_at_spec () =
  let spec_config config obj =
    List.filter
      (fun pid ->
        match Sim.Config.pending config pid with
        | Some (o, _) -> o = obj
        | None -> false)
      (Sim.Config.enabled_pids config)
  in
  let spec_triv config obj =
    List.filter
      (fun pid ->
        match Lowerbound.Triviality.poised_write config pid with
        | Some (o, _) -> o = obj
        | None -> false)
      (Sim.Config.enabled_pids config)
  in
  List.iter
    (fun seed ->
      let config =
        Protocol.initial_config Rw_consensus.protocol ~inputs:[ 0; 1; 1 ]
      in
      let r =
        Sim.Run.exec ~max_steps:(10 * seed) (Sim.Sched.random ~seed) config
      in
      let c = r.Sim.Run.config in
      for obj = 0 to Sim.Config.n_objects c - 1 do
        Alcotest.(check (list int))
          (Printf.sprintf "Config.poised_at seed=%d obj=%d" seed obj)
          (spec_config c obj)
          (Sim.Config.poised_at c obj);
        Alcotest.(check (list int))
          (Printf.sprintf "Triviality.poised_at seed=%d obj=%d" seed obj)
          (spec_triv c obj)
          (Lowerbound.Triviality.poised_at c obj)
      done)
    [ 1; 2; 3; 4; 5 ]

let suite =
  [
    Alcotest.test_case "adversary schedules unchanged by sweep" `Quick
      test_adversaries_golden;
    Alcotest.test_case "poised_at matches list-filter spec" `Quick
      test_poised_at_spec;
  ]
