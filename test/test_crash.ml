(* Crash injection: the exec_with_crashes runner and the fault-tolerance
   claim (survivors always decide, safety never breaks). *)

open Sim
open Consensus

let test_crash_recorded () =
  let p = Fa_consensus.protocol in
  let inputs = [ 0; 1; 1 ] in
  let config = Protocol.initial_config p ~inputs in
  let result =
    Run.exec_with_crashes ~crashes:[ (3, 0) ] (Sched.round_robin ()) config
  in
  let halts =
    List.filter
      (function Event.Halted _ -> true | _ -> false)
      (Trace.events result.Run.trace)
  in
  Alcotest.(check int) "one halt event" 1 (List.length halts);
  Alcotest.(check bool) "victim never decides" true
    (Config.decision result.Run.config 0 = None);
  Alcotest.(check bool) "victim takes no step after crash" true
    (let after = ref false and stepped = ref false in
     List.iter
       (fun ev ->
         match ev with
         | Event.Halted { pid = 0 } -> after := true
         | (Event.Applied { pid = 0; _ } | Event.Coin { pid = 0; _ }) when !after ->
             stepped := true
         | _ -> ())
       (Trace.events result.Run.trace);
     not !stepped)

let test_survivors_decide () =
  List.iter
    (fun (p : Protocol.t) ->
      for seed = 1 to 5 do
        let n = 5 in
        if p.Protocol.supports_n n then begin
          let rng = Rng.create (seed * 7) in
          let inputs = List.init n (fun _ -> Rng.int rng 2) in
          let config = Protocol.initial_config p ~inputs in
          (* crash three processes at staggered points *)
          let crashes = [ (4, 0); (9, 1); (14, 2) ] in
          let result =
            Run.exec_with_crashes ~max_steps:500_000 ~crashes
              (Sched.random ~seed) config
          in
          let verdict = Checker.of_config ~inputs result.Run.config in
          if not (Checker.ok verdict) then
            Alcotest.failf "%s: safety broken under crashes" p.Protocol.name;
          if result.Run.outcome <> Run.All_decided then
            Alcotest.failf "%s: survivors stuck" p.Protocol.name
        end
      done)
    [ Fa_consensus.protocol; Counter_consensus.protocol; Rw_consensus.protocol ]

let test_crash_everyone () =
  let p = Fa_consensus.protocol in
  let inputs = [ 0; 1 ] in
  let config = Protocol.initial_config p ~inputs in
  let result =
    Run.exec_with_crashes ~crashes:[ (1, 0); (2, 1) ] (Sched.random ~seed:1)
      config
  in
  (* everyone crashed: run ends (all "decided-or-halted"), nobody decided,
     and the empty decision set is trivially safe *)
  Alcotest.(check bool) "run ends" true (result.Run.outcome = Run.All_decided);
  Alcotest.(check (list int)) "no decisions" []
    (Config.decisions result.Run.config);
  Alcotest.(check bool) "vacuously safe" true
    (Checker.ok (Checker.of_config ~inputs result.Run.config))

(* The wait-freedom sweep: for EVERY registered correct protocol and every
   crash count f < n, halting f processes at staggered points never
   produces an unsafe verdict, and the survivors still decide (that is
   what wait-free means — no process waits on a crashed one).  The flawed
   registry entries are deliberately excluded: they are unsafe by design
   even with zero crashes, so they witness nothing about crash handling. *)
let test_registry_crash_sweep () =
  List.iter
    (fun (p : Protocol.t) ->
      let n = if p.Protocol.supports_n 5 then 5 else 2 in
      for f = 0 to n - 1 do
        (* staggered: victim i dies just before step 3 + 4i *)
        let crashes = List.init f (fun i -> (3 + (4 * i), i)) in
        List.iter
          (fun seed ->
            let rng = Rng.create ((17 * seed) + f) in
            let inputs = List.init n (fun _ -> Rng.int rng 2) in
            let config = Protocol.initial_config p ~inputs in
            let result =
              Run.exec_with_crashes ~max_steps:500_000 ~crashes
                (Sched.random ~seed) config
            in
            let verdict = Checker.of_config ~inputs result.Run.config in
            if not (Checker.ok verdict) then
              Alcotest.failf "%s: unsafe with f=%d crashes (seed %d)"
                p.Protocol.name f seed;
            if result.Run.outcome <> Run.All_decided then
              Alcotest.failf "%s: survivors stuck with f=%d crashes (seed %d)"
                p.Protocol.name f seed)
          [ 1; 2 ]
      done)
    Registry.correct

let test_e11_rows () =
  let rows = Experiments.E11_crash.rows ~n:4 ~fs:[ 0; 2 ] ~reps:4 ~seed:3 () in
  List.iter
    (fun (r : Experiments.E11_crash.row) ->
      Alcotest.(check int)
        (r.Experiments.E11_crash.protocol ^ " all safe")
        r.Experiments.E11_crash.runs r.Experiments.E11_crash.safe_runs;
      Alcotest.(check int)
        (r.Experiments.E11_crash.protocol ^ " all decided")
        r.Experiments.E11_crash.runs r.Experiments.E11_crash.decided_runs)
    rows

(* property: arbitrary crash plans never break safety of the randomized
   single-object protocol, and survivors always decide *)
let prop_random_crashes =
  QCheck.Test.make ~name:"random crash plans keep fetch&add consensus safe"
    ~count:60
    QCheck.(
      triple (int_bound 1000)
        (list_of_size Gen.(0 -- 3) (pair (int_bound 30) (int_bound 4)))
        (list_of_size Gen.(return 5) (int_bound 1)))
    (fun (seed, crashes, inputs) ->
      let config = Protocol.initial_config Fa_consensus.protocol ~inputs in
      let result =
        Run.exec_with_crashes ~max_steps:200_000 ~crashes
          (Sched.random ~seed:(seed + 1))
          config
      in
      let verdict = Checker.of_config ~inputs result.Run.config in
      Checker.ok verdict && result.Run.outcome = Run.All_decided)
  |> QCheck_alcotest.to_alcotest

let suite =
  [
    prop_random_crashes;
    Alcotest.test_case "crash recorded & respected" `Quick test_crash_recorded;
    Alcotest.test_case "survivors decide" `Quick test_survivors_decide;
    Alcotest.test_case "crash everyone" `Quick test_crash_everyone;
    Alcotest.test_case "registry-wide crash sweep" `Quick
      test_registry_crash_sweep;
    Alcotest.test_case "e11 rows" `Quick test_e11_rows;
  ]
