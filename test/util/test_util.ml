(* Shared string helpers for the test suites (no external string
   library).  Used by the CLI, trace, checkpoint, stats and fuzz tests. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* replace the first occurrence of [sub] with [by]; the haystack unchanged
   when [sub] does not occur *)
let replace_first ~sub ~by s =
  let ns = String.length s and nn = String.length sub in
  let rec go i =
    if nn = 0 || i + nn > ns then s
    else if String.sub s i nn = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + nn) (ns - i - nn)
    else go (i + 1)
  in
  go 0
